"""Tenant bandwidth contracts and admission control.

A *contract* reserves a bandwidth floor for a tenant and caps its
burst ceiling.  The floor is the guaranteed part: admission control
refuses a contract set whose floors oversubscribe the pool's
guaranteed drain capacity, because a floor that cannot be honoured is
a lie, not a contract.  Everything above the floor is opportunistic —
granted while the fabric has headroom, throttled back (never errored)
when the congestion controller detects overload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import AdmissionError, ConfigurationError

__all__ = ["TenantContract", "QosConfig", "check_admission"]


@dataclass(frozen=True)
class TenantContract:
    """One tenant's bandwidth contract (bytes/s).

    ``floor``
        Reserved aggregate bandwidth.  The control plane never pushes
        the tenant's limit below this, congestion or not.
    ``ceiling``
        Burst cap.  ``inf`` means "whatever max-min fairness grants";
        the token buckets still meter it so idle-tenant headroom can be
        borrowed deliberately rather than grabbed.
    """

    name: str
    floor: float
    ceiling: float = float("inf")

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.floor < 0:
            raise ConfigurationError(f"{self.name}: floor must be >= 0")
        if self.ceiling < self.floor:
            raise ConfigurationError(
                f"{self.name}: ceiling {self.ceiling:g} < floor "
                f"{self.floor:g}"
            )


@dataclass(frozen=True)
class QosConfig:
    """Contract set plus control-loop tuning for one QoS plane.

    The defaults are deliberately conservative: a 50 ms control tick
    (fast against the multi-second cache-fill timescale that drives
    congestion), a half-second burst window, and textbook AIMD
    (halve the headroom above the floor on congestion, recover ~10% of
    it per second when quiet).
    """

    contracts: Tuple[TenantContract, ...]
    tick: float = 0.05
    burst_window: float = 0.5
    congestion_threshold: float = 0.9
    congestion_fraction: float = 0.25
    decrease: float = 0.5
    increase_per_s: float = 0.1
    admission_margin: float = 0.8

    def __post_init__(self):
        if not self.contracts:
            raise ConfigurationError("QosConfig needs at least one contract")
        names = [c.name for c in self.contracts]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in {names}")
        if self.tick <= 0 or self.burst_window <= 0:
            raise ConfigurationError("tick and burst_window must be positive")
        if not 0.0 < self.decrease < 1.0:
            raise ConfigurationError("decrease must be in (0, 1)")
        if self.increase_per_s <= 0:
            raise ConfigurationError("increase_per_s must be positive")
        if not 0.0 < self.admission_margin <= 1.0:
            raise ConfigurationError("admission_margin must be in (0, 1]")

    @property
    def n_tenants(self) -> int:
        return len(self.contracts)

    def floors(self) -> np.ndarray:
        return np.array([c.floor for c in self.contracts])

    def ceilings(self) -> np.ndarray:
        return np.array([c.ceiling for c in self.contracts])

    def tenant_index(self, name: str) -> int:
        for i, c in enumerate(self.contracts):
            if c.name == name:
                return i
        raise KeyError(f"unknown tenant {name!r}")

    # -- (de)serialization, for the REPRO_QOS env knob -------------------
    def to_dict(self) -> Dict:
        return {
            "contracts": [
                {"name": c.name, "floor": c.floor, "ceiling": c.ceiling}
                for c in self.contracts
            ],
            "tick": self.tick,
            "burst_window": self.burst_window,
            "congestion_threshold": self.congestion_threshold,
            "congestion_fraction": self.congestion_fraction,
            "decrease": self.decrease,
            "increase_per_s": self.increase_per_s,
            "admission_margin": self.admission_margin,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "QosConfig":
        contracts = tuple(
            TenantContract(
                name=c["name"],
                floor=float(c["floor"]),
                ceiling=float(c.get("ceiling", float("inf"))),
            )
            for c in doc.get("contracts", ())
        )
        kwargs = {
            k: float(doc[k])
            for k in (
                "tick", "burst_window", "congestion_threshold",
                "congestion_fraction", "decrease", "increase_per_s",
                "admission_margin",
            )
            if k in doc
        }
        return cls(contracts=contracts, **kwargs)

    def save_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def load_json(cls, path: str) -> "QosConfig":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def check_admission(config: QosConfig, pool) -> float:
    """Admit the contract set against the pool's guaranteed capacity.

    The guaranteed capacity is what the drain stage can sustain on a
    quiet system — ``n_osts * drain_peak`` scaled by the admission
    margin (seek efficiency, external load and fault headroom eat into
    the theoretical peak, so floors may only claim a fraction of it).
    Raises :class:`~repro.errors.AdmissionError` on oversubscription;
    returns the guaranteed capacity otherwise.
    """
    guaranteed = (
        config.admission_margin
        * pool.n_sinks
        * pool.config.drain_peak
    )
    reserved = float(config.floors().sum())
    if reserved > guaranteed:
        raise AdmissionError(
            f"tenant floors reserve {reserved:.3g} B/s but the pool "
            f"guarantees only {guaranteed:.3g} B/s "
            f"({pool.n_sinks} targets x {pool.config.drain_peak:.3g} B/s "
            f"x {config.admission_margin:g} margin) — refuse at admission, "
            f"not mid-run"
        )
    return guaranteed
