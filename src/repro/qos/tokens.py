"""Decentralized token buckets with idle-to-busy borrowing (AdapTBF).

One bucket per tenant, all state vectorized.  Each control tick mints
``floor * dt`` tokens (bytes) per tenant.  A bucket already at
capacity cannot keep its mint — that surplus is the signature of an
*idle* tenant, and instead of evaporating it is pooled and granted to
tenants whose demand exceeds their own refill, proportionally to their
deficits and capped by their remaining bucket headroom (which encodes
the ceiling).  The pool also receives the *unreserved* mint — the slice
of guaranteed capacity no floor has claimed — so the scheme stays
work-conserving when every tenant is busy: floors decide the split
under contention, not the aggregate admitted rate.  Whatever the busy
tenants cannot absorb is discarded.

Every byte is ledgered: ``minted == kept + borrowed + discarded`` at
all times, and the bucket balance satisfies

    ``sum(tokens) == sum(initial) + minted - discarded - spent``

— the conservation invariants the test suite pins down.  Borrowing
therefore moves bandwidth between tenants without ever creating it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TokenBucketArray"]


class TokenBucketArray:
    """Per-tenant token buckets, refilled at the floor rate.

    Parameters
    ----------
    floors:
        Refill rate per tenant (bytes/s) — the contract floor.
    capacities:
        Bucket capacity per tenant (bytes); typically
        ``ceiling * burst_window``.  Must be finite and positive.
    unreserved:
        Extra mint rate (bytes/s) paid into the shared surplus pool —
        the guaranteed capacity left unclaimed by the floors.  Granted
        to deficit tenants exactly like idle tenants' surplus.
    """

    def __init__(self, floors: np.ndarray, capacities: np.ndarray,
                 unreserved: float = 0.0):
        self.floors = np.asarray(floors, dtype=np.float64).copy()
        self.capacity = np.asarray(capacities, dtype=np.float64).copy()
        if (self.floors < 0).any():
            raise ValueError("floors must be non-negative")
        if not np.isfinite(self.capacity).all() or (self.capacity <= 0).any():
            raise ValueError("bucket capacities must be finite and positive")
        n = len(self.floors)
        if len(self.capacity) != n:
            raise ValueError("floors and capacities must align")
        if unreserved < 0:
            raise ValueError("unreserved mint rate must be >= 0")
        self.unreserved = float(unreserved)
        # Start half-full: a tenant can burst from the first instant
        # without the opening tick minting the whole burst window.
        self.tokens = self.capacity * 0.5
        self.initial = self.tokens.copy()
        # Byte ledgers (cumulative).
        self.minted = 0.0
        self.borrowed = 0.0
        self.discarded = 0.0
        self.spent = 0.0
        self.overdraft = np.zeros(n)  # served beyond tokens, per tenant

    @property
    def n_tenants(self) -> int:
        return len(self.floors)

    def refill(self, dt: float, demand: np.ndarray) -> np.ndarray:
        """One tick: mint, borrow, discard.  Returns borrowed per tenant.

        ``demand`` is each tenant's observed desired rate (bytes/s) —
        served plus throttled — used to size borrowing deficits so
        tokens flow toward tenants that will actually spend them.
        """
        if dt <= 0:
            return np.zeros(self.n_tenants)
        demand = np.asarray(demand, dtype=np.float64)
        mint = self.floors * dt
        headroom = self.capacity - self.tokens
        kept = np.minimum(mint, headroom)
        surplus = float((mint - kept).sum()) + self.unreserved * dt
        self.minted += float(mint.sum()) + self.unreserved * dt
        self.tokens += kept
        headroom -= kept
        # Deficit: demand over the next tick beyond what the bucket
        # already holds, bounded by the remaining headroom (the
        # ceiling's burst budget).
        deficit = np.minimum(
            np.maximum(demand * dt - self.tokens, 0.0), headroom
        )
        total_deficit = float(deficit.sum())
        if surplus <= 0.0 or total_deficit <= 0.0:
            self.discarded += surplus
            return np.zeros(self.n_tenants)
        if total_deficit <= surplus:
            granted = deficit
        else:
            granted = deficit * (surplus / total_deficit)
        self.tokens += granted
        granted_total = float(granted.sum())
        self.borrowed += granted_total
        self.discarded += surplus - granted_total
        return granted

    def spend(self, served: np.ndarray) -> np.ndarray:
        """Deduct served bytes; returns per-tenant overdraft this call.

        A tenant served beyond its tokens (the allocation window ran
        ahead of the metering window) overdraws rather than errors —
        the overdraft marks it over-contract, which is what the
        congestion controller uses for aggressor attribution.
        """
        served = np.asarray(served, dtype=np.float64)
        paid = np.minimum(self.tokens, np.maximum(served, 0.0))
        self.tokens -= paid
        self.spent += float(paid.sum())
        over = np.maximum(served - paid, 0.0)
        self.overdraft += over
        return over

    def allowance(self, horizon: float) -> np.ndarray:
        """Rate each tenant may sustain over ``horizon`` seconds.

        The bucket contents plus the floor refill that will arrive
        during the horizon — so a drained bucket still allows the
        floor, and a full one allows the burst.
        """
        return self.tokens / horizon + self.floors

    def conservation_error(self) -> float:
        """|initial + minted - discarded - spent - balance| in bytes.

        Zero (to float rounding) by construction; the invariant the
        determinism tests assert after arbitrary borrow/spend traffic.
        """
        balance = float(self.tokens.sum())
        return abs(
            float(self.initial.sum()) + self.minted - self.discarded
            - self.spent - balance
        )
