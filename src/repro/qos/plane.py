"""The QoS control plane: buckets + controller wired to one fabric.

Installation order is admission first (a floor set the pool cannot
guarantee is refused up front with
:class:`~repro.errors.AdmissionError`), then an initial limit push
(ceilings — QoS starts permissive), then a periodic control tick on
the simulation calendar.  Each tick:

1. read the fabric's per-tenant served/throttled byte ledgers and
   difference them into observed rates;
2. meter the served bytes through the token buckets (spend), then
   refill with idle→busy borrowing sized by observed demand;
3. run the AIMD controller over the pool's congestion scores;
4. push ``clip(min(bucket allowance, controller allowance),
   floor, ceiling)`` to the fabric as the new tenant limits.

Everything the plane does is calendar-driven and deterministic; two
runs with the same seed and contract set tick identically, which is
what keeps the parallel==serial contract intact for QoS sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.qos.contracts import QosConfig, check_admission
from repro.qos.controller import CongestionController
from repro.qos.tokens import TokenBucketArray

__all__ = ["QosControlPlane"]


class QosControlPlane:
    """Bind a contract set to a machine's fabric and OST pool."""

    def __init__(self, machine, config: QosConfig):
        self.machine = machine
        self.config = config
        self.env = machine.env
        self.fabric = machine.fs.fabric
        self.pool = machine.pool
        self.guaranteed = check_admission(config, self.pool)
        floors = config.floors()
        # Finite burst ceilings: an `inf` contract ceiling means "all
        # the headroom there is", which for metering purposes is the
        # pool's aggregate guaranteed capacity on top of the floor.
        ceilings = np.minimum(
            config.ceilings(), floors + self.guaranteed
        )
        self.ceilings = ceilings
        # Unreserved mint keeps metering work-conserving: capacity no
        # floor has claimed flows to whoever has deficit, so an
        # all-busy tenant mix is not starved down to its floors.
        self.buckets = TokenBucketArray(
            floors,
            np.maximum(ceilings * config.burst_window, 1.0),
            unreserved=max(0.0, self.guaranteed - float(floors.sum())),
        )
        self.controller = CongestionController(config, ceilings)
        self._tick_event = None
        self._last_tick = 0.0
        self._last_served = np.zeros(config.n_tenants)
        self._last_throttled = np.zeros(config.n_tenants)
        self.ticks = 0
        self.installed = False
        self._metrics_bound = False

    # -- lifecycle -------------------------------------------------------
    def install(self) -> None:
        """Push initial limits and start the periodic control tick."""
        if self.installed:
            return
        self.installed = True
        self._last_tick = self.env.now
        self.fabric.set_tenant_limits(self.ceilings)
        self._bind_metrics()
        self._tick_event = self.env.schedule_callback(
            self.config.tick, self._on_tick
        )

    def stop(self) -> None:
        """Cancel the pending tick; installed limits stay in force."""
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _bind_metrics(self) -> None:
        reg = self.machine.metrics
        if reg is None or self._metrics_bound:
            return
        self._metrics_bound = True
        names = [c.name for c in self.config.contracts]
        self._m_served = [
            reg.counter("qos.served_bytes", tenant=n) for n in names
        ]
        self._m_throttled = [
            reg.counter("qos.throttled_bytes", tenant=n) for n in names
        ]
        self._m_limit = [
            reg.gauge("qos.limit_bytes_per_s", tenant=n) for n in names
        ]
        self._m_aggr = [
            reg.counter("qos.aggressor_ticks", tenant=n) for n in names
        ]
        self._m_congested = reg.counter("qos.congested_ticks")

    # -- the control loop ------------------------------------------------
    def _on_tick(self) -> None:
        now = self.env.now
        dt = now - self._last_tick
        self._last_tick = now
        self.ticks += 1
        served, throttled = self.fabric.tenant_accounting()
        d_served = served - self._last_served
        d_throttled = throttled - self._last_throttled
        self._last_served = served
        self._last_throttled = throttled
        if dt > 0:
            served_rate = d_served / dt
            throttled_rate = d_throttled / dt
        else:
            served_rate = np.zeros_like(d_served)
            throttled_rate = np.zeros_like(d_throttled)
        demand_rate = served_rate + throttled_rate
        self.buckets.spend(d_served)
        self.buckets.refill(dt, demand_rate)
        scores = self.pool.congestion_scores()
        was_congested = self.controller.congested(scores)
        allow = self.controller.update(dt, scores, served_rate, demand_rate)
        bucket_allow = self.buckets.allowance(self.config.tick)
        limits = np.clip(
            np.minimum(allow, bucket_allow),
            self.buckets.floors,
            self.ceilings,
        )
        self.fabric.set_tenant_limits(limits)
        if self._metrics_bound:
            for t in range(self.config.n_tenants):
                self._m_served[t].inc(float(d_served[t]))
                self._m_throttled[t].inc(float(d_throttled[t]))
                self._m_limit[t].set(float(limits[t]))
            if was_congested:
                self._m_congested.inc()
        self._tick_event = self.env.schedule_callback(
            self.config.tick, self._on_tick
        )

    # -- accounting ------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Post-run accounting: the graceful-degradation ledger."""
        served, throttled = self.fabric.tenant_accounting()
        if self._metrics_bound:
            # Flush the tail bytes accumulated since the last tick so
            # the telemetry counters agree with the fabric ledger.
            for t in range(self.config.n_tenants):
                self._m_served[t].inc(float(served[t] - self._last_served[t]))
                self._m_throttled[t].inc(
                    float(throttled[t] - self._last_throttled[t])
                )
                self._m_aggr[t].inc(
                    int(self.controller.aggressor_ticks[t])
                )
            self._last_served = served.copy()
            self._last_throttled = throttled.copy()
        per_tenant = []
        for t, c in enumerate(self.config.contracts):
            per_tenant.append({
                "tenant": c.name,
                "floor": c.floor,
                "ceiling": float(self.ceilings[t]),
                "served_bytes": float(served[t]),
                "throttled_bytes": float(throttled[t]),
                "aggressor_ticks": int(self.controller.aggressor_ticks[t]),
                "token_overdraft": float(self.buckets.overdraft[t]),
            })
        return {
            "ticks": self.ticks,
            "congested_ticks": self.controller.congested_ticks,
            "throttle_events": self.controller.throttle_events,
            "tokens_minted": self.buckets.minted,
            "tokens_borrowed": self.buckets.borrowed,
            "tokens_discarded": self.buckets.discarded,
            "token_conservation_error": self.buckets.conservation_error(),
            "guaranteed_capacity": self.guaranteed,
            "tenants": per_tenant,
        }
