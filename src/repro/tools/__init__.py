"""Command-line entry points.

* ``python -m repro.tools.experiment fig1 --scale small`` — regenerate
  any paper artifact and print its table.
* ``python -m repro.tools.compare --app pixie3d:large --procs 512`` —
  ad-hoc transport comparisons on any machine model.
"""
