"""CLI: audit (and repair) a simulated output set end to end.

``repro.tools.fsck`` is the integrity workhorse: it runs one output
operation under an optional corruption fault plan, scrubs every block
of the result against its per-block checksums — rebuilding the global
index from the per-file local indices when the master index is damaged
or withheld — repairs what it can, and verifies the repaired set with
a checksummed read-back of every variable.  The report is
machine-readable JSON (``--json``), and ``--strict`` turns any
undetected corruption, false positive, or failed repair into a
non-zero exit for CI.

Usage::

    python -m repro.tools.fsck --transport adaptive --bitflip 2 --torn 1
    python -m repro.tools.fsck --silent-rate 0.05 --verify-writes --repair
    python -m repro.tools.fsck --faults plan.json --strict --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.apps import AppKernel, Variable
from repro.core.bp import BpReader
from repro.core.integrity import (
    BLOCK_UNINDEXED,
    ScrubReport,
    detection_stats,
    rebuild_global_index,
)
from repro.errors import (
    FileNotFoundInNamespace,
    IntegrityError,
    OstFailedError,
    TransportError,
    WriteTimeout,
)
from repro.faults import (
    CORRUPTION_KINDS,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
)
from repro.machines import jaguar
from repro.units import MB

__all__ = ["main", "build_parser", "fsck_run"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.tools.fsck",
        description="audit and repair a simulated output set",
    )
    p.add_argument("--transport", default="adaptive",
                   choices=["adaptive", "mpiio", "posix", "splitfiles",
                            "stagger"])
    p.add_argument("--n-ranks", type=int, default=64)
    p.add_argument("--n-osts", type=int, default=16)
    p.add_argument("--cap", type=int, default=4,
                   help="per-file stripe cap (max_stripe_count)")
    p.add_argument("--mb", type=float, default=16.0,
                   help="MB per process")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", metavar="PLAN.json",
                   help="explicit fault plan (overrides --bitflip/...)")
    p.add_argument("--bitflip", type=int, default=0, metavar="N",
                   help="inject N block_bitflip events (one per OST)")
    p.add_argument("--torn", type=int, default=0, metavar="N",
                   help="inject N torn_write events")
    p.add_argument("--stale", type=int, default=0, metavar="N",
                   help="inject N stale_index events")
    p.add_argument("--silent-rate", type=float, default=0.0,
                   help="per-block silent-corruption probability")
    p.add_argument("--at", type=float, default=0.7, metavar="FRAC",
                   help="fire injected events at FRAC of the fault-free "
                        "write time (default 0.7)")
    p.add_argument("--verify-writes", action="store_true",
                   help="arm the adaptive write-verify-rewrite loop")
    p.add_argument("--no-checksums", action="store_true",
                   help="model a checksum-free output set")
    p.add_argument("--rebuild-index", action="store_true",
                   help="discard the global index and rebuild it from "
                        "the per-file local indices before scrubbing")
    p.add_argument("--repair", action="store_true",
                   help="rewrite damaged blocks in place, then re-scrub "
                        "and read back every variable")
    p.add_argument("--json", metavar="PATH",
                   help="write the machine-readable report to PATH")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on undetected corruption, false "
                        "positives, or a failed repair")
    return p


def _make_transport(name: str):
    from repro.core.transports import (
        AdaptiveTransport,
        MpiIoTransport,
        PosixTransport,
        SplitFilesTransport,
        StaggerTransport,
    )

    return {
        "adaptive": lambda: AdaptiveTransport(),
        "mpiio": lambda: MpiIoTransport(),
        "posix": lambda: PosixTransport(build_index=True),
        "splitfiles": lambda: SplitFilesTransport(),
        "stagger": lambda: StaggerTransport(),
    }[name]()


def _compose_plan(args, base) -> Optional[FaultPlan]:
    if args.faults:
        plan = FaultPlan.from_json(args.faults)
        if args.verify_writes:
            plan = plan.with_policy(read_back_verify=True)
        return plan
    n_events = args.bitflip + args.torn + args.stale
    if n_events == 0 and args.silent_rate == 0.0 and not args.verify_writes:
        return None
    write_time = base.write_time
    if args.transport == "adaptive":
        # Adaptive serializes writers, so stored blocks accumulate
        # throughout the write phase; --at places corruption inside it.
        at = max(args.at * write_time, 1e-3)
    else:
        # Static transports register stored blocks only as each write
        # *completes* — which all happens near the end of the write
        # phase — so corruption mid-phase would find nothing to rot.
        # Land it just after the write phase, during the flush.
        at = (base.open_time + write_time
              + max(0.25 * base.flush_time, 1e-3))
    events: List[FaultEvent] = []
    ost = 0

    def _spread(kind: str, n: int, factor: float) -> None:
        nonlocal ost
        for _ in range(n):
            events.append(FaultEvent(time=at, kind=kind,
                                     target=ost % args.n_osts,
                                     factor=factor))
            ost += 1

    _spread("block_bitflip", args.bitflip, 1.0)
    _spread("torn_write", args.torn, 1.0)
    _spread("stale_index", args.stale, 1.0)
    return FaultPlan(
        events=tuple(events),
        policy=RetryPolicy(run_timeout=max(120.0, 100.0 * write_time),
                           read_back_verify=args.verify_writes),
        silent_error_rate=args.silent_rate,
    )


def _repair(machine, reader: BpReader, report: ScrubReport) -> Dict:
    """Rewrite every damaged block its index entry can vouch for.

    The index entry carries offset, size and the content checksum, so a
    rewrite through the normal write path restores exactly the block
    the writer produced.  Unindexed blocks have nothing to restore from
    and are garbage-collected instead; blocks on fail-stopped targets
    and files missing from the namespace are unrepairable.
    """
    env = machine.env
    fs = machine.fs
    # Repairs must not themselves rot.
    fs.corrupt_hook = None
    index = reader.index
    if index is None:
        index, _ = rebuild_global_index(fs, reader.files)
    entry_at: Dict[Tuple[str, float, float], object] = {}
    for path, entries in index.entries_by_file().items():
        for e in entries:
            entry_at[(path, e.offset, e.nbytes)] = e
    outcome = {"repaired": 0, "collected": 0, "unrepairable": 0}
    tr = reader.env_tracer()

    reopened = []

    def _go():
        for b in report.bad:
            try:
                f = fs.lookup(b.file)
            except FileNotFoundInNamespace:
                outcome["unrepairable"] += 1
                continue
            if b.status == BLOCK_UNINDEXED:
                f.blocks.pop((b.offset, b.nbytes), None)
                outcome["collected"] += 1
                continue
            entry = entry_at.get((b.file, b.offset, b.nbytes))
            if entry is None:
                outcome["unrepairable"] += 1
                continue
            if f.closed:  # fsck reopens the file read-write
                f.closed = False
                reopened.append(f)
            try:
                yield from fs.write(
                    f, node=0, offset=entry.offset, nbytes=entry.nbytes,
                    writer=entry.writer,
                    blocks=[(entry.offset, entry.nbytes, entry.checksum)],
                )
            except (OstFailedError, WriteTimeout):
                outcome["unrepairable"] += 1
                continue
            outcome["repaired"] += 1
            if tr is not None:
                tr.instant(
                    "block.repair", cat="integrity", pid="integrity",
                    tid=f"rank {entry.writer}",
                    args={"file": b.file, "offset": float(b.offset),
                          "was": b.status},
                )
        for f in reopened:
            yield from fs.flush(f)
            yield from fs.close(f)
        return outcome

    proc = env.process(_go(), name="fsck.repair")
    env.run(until=proc)
    return outcome


def _read_back(machine, reader: BpReader) -> Dict:
    """Checksummed read of every variable block; the bit-for-bit gate."""
    env = machine.env
    index = reader.index
    if index is None:
        index, _ = rebuild_global_index(machine.fs, reader.files)
    verifier = BpReader(machine.fs, index=index, verify=True)
    outcome = {"variables": 0, "bytes_read": 0.0, "errors": []}

    def _go():
        for var in index.variables:
            try:
                nbytes, _t = yield from verifier.read_variable(0, var)
            except IntegrityError as exc:
                outcome["errors"].append(str(exc))
                continue
            outcome["variables"] += 1
            outcome["bytes_read"] += nbytes
        return outcome

    proc = env.process(_go(), name="fsck.readback")
    env.run(until=proc)
    return outcome


def fsck_run(args) -> Dict:
    """The audit pipeline; returns the machine-readable report dict."""
    spec = jaguar(n_osts=args.n_osts).with_overrides(
        max_stripe_count=args.cap
    )
    app = AppKernel(
        "fsck",
        [Variable("v", shape=(int(args.mb * MB / 8),))],
        checksums=not args.no_checksums,
    )
    transport = _make_transport(args.transport)

    # Fault-free baseline sizes the corruption times.
    base = transport.run(
        spec.build(n_ranks=args.n_ranks, seed=args.seed), app,
        output_name="fsck",
    )
    plan = _compose_plan(args, base)

    machine = spec.build(n_ranks=args.n_ranks, seed=args.seed, faults=plan)
    if (
        args.transport == "stagger"
        and machine.faults is not None
        and plan.events
    ):
        # Stagger predates the fault harness and never arms the
        # injector itself.  Corruption events act on stored state and
        # need no writer cooperation, so fsck arms the clock here;
        # anything else (fail-stop, hangs, ...) has no defined stagger
        # semantics and the plan is refused rather than half-run.
        if all(ev.kind in CORRUPTION_KINDS for ev in plan.events):
            machine.faults.arm()
        else:
            print(
                "fsck: stagger supports only corruption fault kinds "
                f"({', '.join(CORRUPTION_KINDS)}); refusing plan",
                file=sys.stderr,
            )
            return {"error": "stagger supports only corruption faults"}
    completed = True
    failure = None
    try:
        res = _make_transport(args.transport).run(
            machine, app, output_name="fsck"
        )
    except TransportError as exc:
        completed = False
        failure = str(exc)
        res = exc.partial
    files = list(res.files) if res is not None else machine.fs.listdir()
    index = res.index if res is not None else None
    rebuilt = {"used": False, "uncovered": []}
    if args.rebuild_index or index is None or not index.files:
        index, uncovered = rebuild_global_index(machine.fs, files)
        rebuilt = {"used": True, "uncovered": uncovered}

    reader = BpReader(machine.fs, index=index, files=files)
    proc = machine.env.process(reader.scrub_sim(0), name="fsck.scrub")
    machine.env.run(until=proc)
    report, scrub_seconds = proc.value
    detection = detection_stats(report, machine.fs, index)

    out = {
        "transport": args.transport,
        "n_ranks": args.n_ranks,
        "n_osts": args.n_osts,
        "seed": args.seed,
        "completed": completed,
        "transport_error": failure,
        "plan": plan.to_dict() if plan is not None else None,
        "index_rebuilt": rebuilt,
        "scrub": report.to_dict(),
        "scrub_seconds": scrub_seconds,
        "detection": detection,
        "injected": (
            machine.faults.summary() if machine.faults is not None else {}
        ),
        "repair": None,
        "read_back": None,
    }
    if args.repair:
        out["repair"] = _repair(machine, reader, report)
        re_proc = machine.env.process(
            reader.scrub_sim(0), name="fsck.rescrub"
        )
        machine.env.run(until=re_proc)
        re_report, _t = re_proc.value
        out["rescrub"] = re_report.to_dict()
        out["read_back"] = _read_back(machine, reader)
    return out


def _render(out: Dict) -> str:
    lines = [
        f"fsck: {out['transport']} x{out['n_ranks']} ranks on "
        f"{out['n_osts']} OSTs, seed {out['seed']}",
        f"  run completed: {out['completed']}"
        + (f" ({out['transport_error']})" if out["transport_error"] else ""),
    ]
    if out["index_rebuilt"]["used"]:
        unc = out["index_rebuilt"]["uncovered"]
        lines.append(
            f"  global index rebuilt from local indices"
            + (f" ({len(unc)} file(s) uncovered)" if unc else "")
        )
    s = out["scrub"]
    lines.append(
        f"  scrub: {s['n_blocks']} blocks / {s['n_files']} files in "
        f"{out['scrub_seconds']:.3f} sim-s -> "
        + ", ".join(f"{v} {k}" for k, v in s["counts"].items() if v)
    )
    d = out["detection"]
    lines.append(
        f"  detection: {d['detected']}/{d['truth']} detected, "
        f"{d['undetected']} undetected, {d['false_positives']} false "
        f"positive(s)"
    )
    if out["repair"] is not None:
        r = out["repair"]
        lines.append(
            f"  repair: {r['repaired']} rewritten, {r['collected']} "
            f"unindexed collected, {r['unrepairable']} unrepairable"
        )
        rs = out["rescrub"]
        lines.append(
            "  re-scrub: "
            + (", ".join(f"{v} {k}" for k, v in rs["counts"].items() if v)
               or "empty")
            + (" [clean]" if rs["ok"] else " [still damaged]")
        )
        rb = out["read_back"]
        lines.append(
            f"  read-back: {rb['variables']} variable(s), "
            f"{rb['bytes_read']:.0f} B verified, "
            f"{len(rb['errors'])} integrity error(s)"
        )
    return "\n".join(lines)


def _strict_failures(out: Dict) -> List[str]:
    bad = []
    d = out["detection"]
    if d["undetected"] > 0:
        bad.append(f"{d['undetected']} undetected corrupt block(s)")
    if d["false_positives"] > 0:
        bad.append(f"{d['false_positives']} false positive(s)")
    if out["repair"] is not None:
        if out["repair"]["unrepairable"] > 0:
            bad.append(
                f"{out['repair']['unrepairable']} unrepairable block(s)"
            )
        if not out["rescrub"]["ok"]:
            bad.append("re-scrub after repair still finds damage")
        if out["read_back"]["errors"]:
            bad.append(
                f"{len(out['read_back']['errors'])} read-back integrity "
                f"error(s)"
            )
    return bad


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    out = fsck_run(args)
    if "error" in out:
        return 2
    print(_render(out))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(out, fh, indent=2)
            fh.write("\n")
        print(f"[report -> {args.json}]")
    if args.strict:
        bad = _strict_failures(out)
        if bad:
            print("fsck: STRICT FAIL: " + "; ".join(bad), file=sys.stderr)
            return 1
        print("fsck: strict checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
