"""CLI: regenerate a paper artifact.

Usage::

    python -m repro.tools.experiment fig1 --scale small --seed 0
    python -m repro.tools.experiment table1 --scale paper
    python -m repro.tools.experiment all --scale smoke --fail-fast

Exit status is nonzero when any cell fails: a raised error in a sweep
cell (reported with the cell's label and ``sample_seed`` so it can be
reproduced with a one-liner) **or** a rendered-but-degraded artifact —
a result whose ``failure_report()`` names cells that absorbed a
``TransportError``-aborted partial output.  ``--fail-fast`` stops at
the first failing artifact instead of rendering the rest.

``--journal DIR`` checkpoints every completed cell to an append-only
journal; rerunning the same command resumes from it (see DESIGN.md
§14 and ``python -m repro.tools.serve`` for the daemon form).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.harness.experiment import Scale

__all__ = ["main", "ARTIFACTS", "artifact_failures"]


def _fig1(scale, seed):
    from repro.harness.figures import fig1

    return fig1.run(scale, seed)


def _table1(scale, seed):
    from repro.harness.figures import table1

    return table1.run(scale, seed)


def _fig2(scale, seed):
    from repro.harness.figures import fig2

    return fig2.run(scale, seed)


def _fig3(scale, seed):
    from repro.harness.figures import fig3

    return fig3.run(scale, seed)


def _fig5(scale, seed):
    from repro.harness.figures import fig5

    return fig5.run(scale, seed)


def _fig6(scale, seed):
    from repro.harness.figures import fig6

    return fig6.run(scale, seed)


def _fig7(scale, seed):
    from repro.harness.figures import fig7

    return fig7.run(scale, seed)


def _resilience(scale, seed):
    from repro.harness.figures import resilience

    return resilience.run(scale, seed)


def _qos(scale, seed):
    from repro.harness.figures import qos

    return qos.run(scale, seed)


#: name -> callable returning the artifact's *result object* (render
#: with ``.render()``; machine-readable payload via ``.to_dict()``).
ARTIFACTS: Dict[str, Callable] = {
    "fig1": _fig1,
    "table1": _table1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "resilience": _resilience,
    "qos": _qos,
}


def artifact_failures(result) -> list:
    """Failure strings a rendered result self-reports (else empty).

    Results may expose ``failure_report() -> list[str]`` naming cells
    that only *look* complete — e.g. a method that absorbed a
    ``TransportError`` partial output into its table.  Absence of the
    protocol means nothing to report.
    """
    report = getattr(result, "failure_report", None)
    if not callable(report):
        return []
    return [str(x) for x in report()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.experiment",
        description=(
            "Regenerate a table or figure from 'Managing Variability in "
            "the IO Performance of Petascale Storage Systems' (SC'10)."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=[s.value for s in Scale],
        help="experiment size preset (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sample fan-out (0 = all cores; "
        "default: REPRO_JOBS, else serial).  Results are bit-identical "
        "to serial runs",
    )
    parser.add_argument(
        "--journal", metavar="DIR", default=None,
        help="checkpoint every completed sweep cell to DIR (append-only "
        "JSON-lines journal; rerunning the same command resumes from "
        "it, bit-identically.  Equivalent to setting REPRO_JOURNAL)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first failing artifact instead of rendering "
        "the remaining ones (exit status is nonzero on any failure "
        "either way)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export a Chrome trace-event JSON of every simulation "
        "run (open in Perfetto; summarize with repro.tools.trace)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export a telemetry JSON snapshot of every simulation run "
        "(per-OST time series, fabric/transport counters, straggler "
        "flags; render with repro.tools.monitor --dashboard).  "
        "Collection is non-perturbing: results are bit-identical "
        "with or without it",
    )
    parser.add_argument(
        "--faults", metavar="PATH", default=None,
        help="inject faults from a FaultPlan JSON into every "
        "simulation run (equivalent to setting REPRO_FAULTS; the "
        "resilience artifact builds its own plans and ignores this)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs is not None:
        # Propagate via the environment so every run_samples call below
        # (and in any worker-side nesting) picks the same job count up.
        import os

        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.journal is not None:
        import os

        os.environ["REPRO_JOURNAL"] = args.journal
    if args.faults is not None:
        # Same propagation trick: machine builds (local and in worker
        # processes) resolve REPRO_FAULTS when no explicit plan is set.
        import os

        from repro.faults import FaultPlan

        FaultPlan.from_json(args.faults)  # fail fast on a bad plan
        os.environ["REPRO_FAULTS"] = args.faults
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]

    failures = []

    def run_all() -> None:
        for name in names:
            start = time.time()
            try:
                result = ARTIFACTS[name](Scale.parse(args.scale), args.seed)
            except Exception as exc:
                failures.append(f"{name}: {exc}")
                print(f"[{name} @ {args.scale}, seed {args.seed}: "
                      f"FAILED]\n{exc}\n", file=sys.stderr)
                if args.fail_fast:
                    return
                continue
            elapsed = time.time() - start
            print(result.render())
            print(f"\n[{name} @ {args.scale}, seed {args.seed}: "
                  f"{elapsed:.1f}s wall]\n")
            degraded = artifact_failures(result)
            if degraded:
                failures.extend(f"{name}: {d}" for d in degraded)
                print(
                    f"[{name}: {len(degraded)} cell(s) absorbed a "
                    "partial/aborted result:]\n  "
                    + "\n  ".join(degraded),
                    file=sys.stderr,
                )
                if args.fail_fast:
                    return

    from contextlib import ExitStack

    with ExitStack() as stack:
        tracer = None
        registry = None
        if args.trace:
            from repro.harness.experiment import trace_to

            tracer = stack.enter_context(trace_to(args.trace))
        if args.metrics:
            from repro.harness.experiment import metrics_to

            registry = stack.enter_context(metrics_to(args.metrics))
        run_all()
    if tracer is not None:
        print(f"[trace: {len(tracer.events)} events -> {args.trace}]")
    if registry is not None:
        print(f"[metrics: {len(registry)} instruments over "
              f"{registry.n_runs} run(s) -> {args.metrics}]")
    if failures:
        print(f"[{len(failures)} failure(s)]", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
