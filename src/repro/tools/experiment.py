"""CLI: regenerate a paper artifact.

Usage::

    python -m repro.tools.experiment fig1 --scale small --seed 0
    python -m repro.tools.experiment table1 --scale paper
    python -m repro.tools.experiment all --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.harness.experiment import Scale

__all__ = ["main", "ARTIFACTS"]


def _fig1(scale, seed):
    from repro.harness.figures import fig1

    return fig1.run(scale, seed).render()


def _table1(scale, seed):
    from repro.harness.figures import table1

    return table1.run(scale, seed).render()


def _fig2(scale, seed):
    from repro.harness.figures import fig2

    return fig2.run(scale, seed).render()


def _fig3(scale, seed):
    from repro.harness.figures import fig3

    return fig3.run(scale, seed).render()


def _fig5(scale, seed):
    from repro.harness.figures import fig5

    return fig5.run(scale, seed).render()


def _fig6(scale, seed):
    from repro.harness.figures import fig6

    return fig6.run(scale, seed).render()


def _fig7(scale, seed):
    from repro.harness.figures import fig7

    return fig7.run(scale, seed).render()


def _resilience(scale, seed):
    from repro.harness.figures import resilience

    return resilience.run(scale, seed).render()


ARTIFACTS: Dict[str, Callable] = {
    "fig1": _fig1,
    "table1": _table1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "resilience": _resilience,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.experiment",
        description=(
            "Regenerate a table or figure from 'Managing Variability in "
            "the IO Performance of Petascale Storage Systems' (SC'10)."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=[s.value for s in Scale],
        help="experiment size preset (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sample fan-out (0 = all cores; "
        "default: REPRO_JOBS, else serial).  Results are bit-identical "
        "to serial runs",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export a Chrome trace-event JSON of every simulation "
        "run (open in Perfetto; summarize with repro.tools.trace)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="export a telemetry JSON snapshot of every simulation run "
        "(per-OST time series, fabric/transport counters, straggler "
        "flags; render with repro.tools.monitor --dashboard).  "
        "Collection is non-perturbing: results are bit-identical "
        "with or without it",
    )
    parser.add_argument(
        "--faults", metavar="PATH", default=None,
        help="inject faults from a FaultPlan JSON into every "
        "simulation run (equivalent to setting REPRO_FAULTS; the "
        "resilience artifact builds its own plans and ignores this)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs is not None:
        # Propagate via the environment so every run_samples call below
        # (and in any worker-side nesting) picks the same job count up.
        import os

        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.faults is not None:
        # Same propagation trick: machine builds (local and in worker
        # processes) resolve REPRO_FAULTS when no explicit plan is set.
        import os

        from repro.faults import FaultPlan

        FaultPlan.from_json(args.faults)  # fail fast on a bad plan
        os.environ["REPRO_FAULTS"] = args.faults
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]

    def run_all() -> None:
        for name in names:
            start = time.time()
            text = ARTIFACTS[name](Scale.parse(args.scale), args.seed)
            elapsed = time.time() - start
            print(text)
            print(f"\n[{name} @ {args.scale}, seed {args.seed}: "
                  f"{elapsed:.1f}s wall]\n")

    from contextlib import ExitStack

    with ExitStack() as stack:
        tracer = None
        registry = None
        if args.trace:
            from repro.harness.experiment import trace_to

            tracer = stack.enter_context(trace_to(args.trace))
        if args.metrics:
            from repro.harness.experiment import metrics_to

            registry = stack.enter_context(metrics_to(args.metrics))
        run_all()
    if tracer is not None:
        print(f"[trace: {len(tracer.events)} events -> {args.trace}]")
    if registry is not None:
        print(f"[metrics: {len(registry)} instruments over "
              f"{registry.n_runs} run(s) -> {args.metrics}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
