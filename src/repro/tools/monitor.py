"""CLI: run (or load) a telemetry snapshot and render observability
artifacts — an HTML dashboard, a Prometheus text export, a JSON dump,
and the self-profiler's flame table.

Two sources:

* ``--from-json metrics.json`` — a snapshot produced earlier (e.g. by
  ``repro.tools.experiment --metrics``); monitor just renders it.
* no ``--from-json`` — run a live demonstration cell: one transport
  writing a real app's output while a background job hammers a
  minority of the storage targets, the exact scenario the straggler
  detector exists for.  The flagged set is checked against the
  interference plan's ground truth and reported.

Usage::

    python -m repro.tools.monitor --dashboard out.html
    python -m repro.tools.monitor --dashboard out.html --profile \\
        --transport adaptive --procs 64
    python -m repro.tools.monitor --from-json metrics.json \\
        --dashboard out.html --prometheus out.prom
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional

from repro.apps.base import AppKernel

__all__ = ["main", "run_demo_cell"]

APPS: Dict[str, Callable[[], AppKernel]] = {}


def _apps() -> Dict[str, Callable[[], AppKernel]]:
    if not APPS:
        from repro.apps.gtc import gtc
        from repro.apps.pixie3d import pixie3d
        from repro.apps.s3d import s3d
        from repro.apps.xgc1 import xgc1

        APPS.update(
            {"xgc1": xgc1, "gtc": gtc, "s3d": s3d, "pixie3d": pixie3d}
        )
    return APPS


def run_demo_cell(
    app_name: str = "gtc",
    transport_name: str = "adaptive",
    n_procs: int = 128,
    pool_osts: int = 32,
    interfere_osts: int = 6,
    seed: int = 0,
    profile: bool = False,
):
    """One interference cell under full telemetry.

    Returns ``(registry, detector, ground_truth, profile_dict)``.
    ``interfere_osts`` must stay a *minority* of the pool: the robust
    z-score baselines on the pool median, and a majority of interfered
    targets would drag the median down to their level.
    """
    from repro.core.transports import AdaptiveTransport, MpiIoTransport
    from repro.interference import BackgroundWriterJob
    from repro.machines import jaguar
    from repro.telemetry import MetricsRegistry, profiling
    from repro.units import GB

    if not 0 <= interfere_osts <= pool_osts // 2:
        raise SystemExit(
            f"--interfere-osts must be at most half the pool "
            f"({pool_osts // 2}); the detector baselines on the median"
        )
    reg = MetricsRegistry()
    spec = jaguar(n_osts=pool_osts).with_overrides(
        max_stripe_count=max(4, pool_osts // 4)
    )
    machine = spec.build(
        n_ranks=n_procs,
        seed=seed,
        extra_service_nodes=2 if interfere_osts else 0,
        metrics=reg,
    )
    ground_truth = list(range(interfere_osts))
    if interfere_osts:
        BackgroundWriterJob(
            machine,
            n_osts=interfere_osts,
            writers_per_ost=3,
            write_size=1.0 * GB,
        ).start()
    if transport_name == "adaptive":
        transport = AdaptiveTransport(
            n_osts_used=min(max(pool_osts * 3 // 4, 1), n_procs)
        )
    else:
        transport = MpiIoTransport(build_index=False)
    prof_dict: Optional[dict] = None
    if profile:
        with profiling(machine) as prof:
            transport.run(machine, _apps()[app_name]())
        prof_dict = prof.to_dict()
    else:
        transport.run(machine, _apps()[app_name]())
    detector = machine.monitor.detector if machine.monitor else None
    return reg, detector, ground_truth, prof_dict


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.monitor",
        description="Render telemetry: HTML dashboard, Prometheus "
        "export, straggler report, self-profile.",
    )
    src = parser.add_argument_group("source")
    src.add_argument(
        "--from-json", metavar="PATH", default=None,
        help="render an existing metrics snapshot instead of running "
        "a demonstration cell",
    )
    src.add_argument("--app", default="gtc", choices=sorted(
        ("xgc1", "gtc", "s3d", "pixie3d")))
    src.add_argument("--transport", default="adaptive",
                     choices=("adaptive", "mpiio"))
    src.add_argument("--procs", type=int, default=128)
    src.add_argument("--pool-osts", type=int, default=32)
    src.add_argument(
        "--interfere-osts", type=int, default=6,
        help="background-hammered targets (must be a minority of the "
        "pool; 0 disables interference)",
    )
    src.add_argument("--seed", type=int, default=0)
    src.add_argument(
        "--profile", action="store_true",
        help="attach the wall-clock self-profiler to the demo run",
    )
    out = parser.add_argument_group("outputs")
    out.add_argument("--dashboard", metavar="PATH", default=None,
                     help="write the self-contained HTML dashboard")
    out.add_argument("--json", metavar="PATH", default=None,
                     help="write the metrics snapshot JSON")
    out.add_argument("--prometheus", metavar="PATH", default=None,
                     help="write the Prometheus text exposition")
    out.add_argument("--title", default=None, help="dashboard title")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    profile_dict = None
    detector = None
    ground_truth = None
    if args.from_json:
        with open(args.from_json) as fh:
            snapshot = json.load(fh)
        title = args.title or f"repro telemetry ({args.from_json})"
        registry = None
    else:
        registry, detector, ground_truth, profile_dict = run_demo_cell(
            app_name=args.app,
            transport_name=args.transport,
            n_procs=args.procs,
            pool_osts=args.pool_osts,
            interfere_osts=args.interfere_osts,
            seed=args.seed,
            profile=args.profile,
        )
        snapshot = registry.snapshot()
        title = args.title or (
            f"{args.app}/{args.transport} x{args.procs} on "
            f"{args.pool_osts} OSTs"
            + (f", {args.interfere_osts} interfered"
               if args.interfere_osts else "")
        )

    if detector is not None:
        flagged = sorted(detector.ever_flagged())
        print(f"stragglers flagged: {flagged or 'none'}")
        if ground_truth:
            hits = sorted(set(flagged) & set(ground_truth))
            misses = sorted(set(ground_truth) - set(flagged))
            extra = sorted(set(flagged) - set(ground_truth))
            print(f"ground truth (interfered): {ground_truth}")
            print(f"  detected: {hits or 'none'}; missed: "
                  f"{misses or 'none'}; false alarms: {extra or 'none'}")
    if profile_dict is not None:
        from repro.telemetry.profiler import Profiler

        prof = Profiler()
        for name, s in profile_dict["sections"].items():
            prof.self_time[name] = s["seconds"]
            prof.calls[name] = s["calls"]
        prof.wall_total = profile_dict.get("wall_seconds")
        print("\nself-profile:\n" + prof.report())

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(snapshot, fh, indent=2, default=float)
        print(f"[metrics -> {args.json}]")
    if args.prometheus:
        if registry is None:
            raise SystemExit(
                "--prometheus needs a live run (the text exposition is "
                "a point-in-time export; use --json for snapshots)"
            )
        with open(args.prometheus, "w") as fh:
            fh.write(registry.to_prometheus())
        print(f"[prometheus -> {args.prometheus}]")
    if args.dashboard:
        from repro.telemetry.dashboard import render_dashboard

        html = render_dashboard(snapshot, profile=profile_dict,
                                title=title)
        with open(args.dashboard, "w") as fh:
            fh.write(html)
        print(f"[dashboard -> {args.dashboard}]")
    if not (args.dashboard or args.json or args.prometheus):
        n = len(snapshot.get("metrics", []))
        print(f"[{n} instruments collected; pass --dashboard/--json/"
              "--prometheus to export]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
