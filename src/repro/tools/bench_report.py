"""CLI: aggregate benchmark results into one perf-trajectory table.

Every benchmark run saves ``benchmarks/results/BENCH_<name>.json``
with its machine-readable numbers under ``data`` and, when the
benchmark re-runs, the prior numbers under ``data.previous``.  This
tool collects the whole directory into a single view of where
performance moved: each scalar metric, its current value, its previous
value, and the ratio.

Usage::

    python -m repro.tools.bench_report
    python -m repro.tools.bench_report --only kernel --only scale
    python -m repro.tools.bench_report --json report.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

__all__ = ["main", "collect", "render_markdown"]

DEFAULT_RESULTS = pathlib.Path("benchmarks") / "results"


def _flatten(data: dict, prefix: str = "") -> Dict[str, float]:
    """Scalar numeric leaves with dotted keys; 'previous' excluded."""
    out: Dict[str, float] = {}
    for key, value in data.items():
        if key == "previous":
            continue
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = float(value)
        elif isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{name}."))
    return out


def collect(results_dir: pathlib.Path,
            only: Optional[List[str]] = None) -> List[dict]:
    """One record per benchmark: name + per-metric current/previous."""
    records = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if only and name not in only:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            records.append({"name": name, "error": str(exc), "metrics": []})
            continue
        data = payload.get("data") or {}
        if not isinstance(data, dict):
            records.append({"name": name, "metrics": []})
            continue
        current = _flatten(data)
        prev_raw = data.get("previous")
        previous = _flatten(prev_raw) if isinstance(prev_raw, dict) else {}
        metrics = []
        for key in sorted(current):
            cur = current[key]
            prev = previous.get(key)
            ratio = (
                cur / prev
                if prev is not None and prev != 0
                else None
            )
            metrics.append(
                {
                    "metric": key,
                    "current": cur,
                    "previous": prev,
                    "ratio": ratio,
                }
            )
        records.append({"name": name, "metrics": metrics})
    return records


def _fmt(v: Optional[float]) -> str:
    if v is None:
        return "-"
    if v == 0:
        return "0"
    if abs(v) >= 1e6 or abs(v) < 1e-3:
        return f"{v:.3g}"
    if v == int(v):
        return str(int(v))
    return f"{v:.4g}"


def render_markdown(records: List[dict], changed_only: bool = False) -> str:
    """One markdown table covering every benchmark's metrics."""
    lines = [
        "| benchmark | metric | current | previous | ratio |",
        "|---|---|---:|---:|---:|",
    ]
    n_rows = 0
    for rec in records:
        if rec.get("error"):
            lines.append(
                f"| {rec['name']} | (unreadable: {rec['error']}) "
                "| - | - | - |"
            )
            continue
        for m in rec["metrics"]:
            if changed_only and m["previous"] is None:
                continue
            ratio = (
                f"{m['ratio']:.2f}x" if m["ratio"] is not None else "-"
            )
            lines.append(
                f"| {rec['name']} | {m['metric']} | {_fmt(m['current'])} "
                f"| {_fmt(m['previous'])} | {ratio} |"
            )
            n_rows += 1
    if n_rows == 0 and len(lines) == 2:
        return "(no benchmark results found)"
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.bench_report",
        description="Aggregate benchmarks/results/BENCH_*.json into one "
        "perf-trajectory table (current vs previous per metric).",
    )
    parser.add_argument(
        "--results", metavar="DIR", default=str(DEFAULT_RESULTS),
        help=f"results directory (default: {DEFAULT_RESULTS})",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME", default=None,
        help="restrict to this benchmark (repeatable); names as in "
        "BENCH_<name>.json",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="only rows that have a previous value to compare against",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the aggregation as JSON",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    results_dir = pathlib.Path(args.results)
    if not results_dir.is_dir():
        print(f"results directory not found: {results_dir}",
              file=sys.stderr)
        return 1
    records = collect(results_dir, only=args.only)
    print(render_markdown(records, changed_only=args.changed_only))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"results_dir": str(results_dir),
                       "benchmarks": records}, fh, indent=2)
        print(f"\n[json -> {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
