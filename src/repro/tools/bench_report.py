"""CLI: aggregate benchmark results into one perf-trajectory table.

Every benchmark run saves ``benchmarks/results/BENCH_<name>.json``
with its machine-readable numbers under ``data`` and, when the
benchmark re-runs, the prior numbers under ``data.previous``.  This
tool collects the whole directory into a single view of where
performance moved: each scalar metric, its current value, its previous
value, and the ratio.

Usage::

    python -m repro.tools.bench_report
    python -m repro.tools.bench_report --only kernel --only scale
    python -m repro.tools.bench_report --json report.json

Gate mode turns the tool into CI's perf check: each ``--gate`` names a
``<benchmark>.<metric>=<min_ratio>`` against a ``--baseline`` directory
of committed results; metrics whose name ends in ``_seconds`` are
lower-is-better (ratio = baseline/current), everything else
higher-is-better (ratio = current/baseline).  Exit status 1 when any
gate fails::

    python -m repro.tools.bench_report --baseline /tmp/committed \\
        --gate kernel.events_per_sec=0.70 \\
        --gate scale.adaptive_8192_seconds=0.70
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

__all__ = ["main", "collect", "partial_records", "render_markdown",
           "run_gates"]

DEFAULT_RESULTS = pathlib.Path("benchmarks") / "results"


def _flatten(data: dict, prefix: str = "") -> Dict[str, float]:
    """Scalar numeric leaves with dotted keys; 'previous' excluded."""
    out: Dict[str, float] = {}
    for key, value in data.items():
        if key == "previous":
            continue
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = float(value)
        elif isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{name}."))
    return out


def collect(results_dir: pathlib.Path,
            only: Optional[List[str]] = None) -> List[dict]:
    """One record per benchmark: name + per-metric current/previous."""
    records = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if only and name not in only:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            records.append({"name": name, "error": str(exc), "metrics": []})
            continue
        data = payload.get("data") or {}
        if not isinstance(data, dict):
            records.append({"name": name, "metrics": []})
            continue
        current = _flatten(data)
        prev_raw = data.get("previous")
        previous = _flatten(prev_raw) if isinstance(prev_raw, dict) else {}
        metrics = []
        for key in sorted(current):
            cur = current[key]
            prev = previous.get(key)
            ratio = (
                cur / prev
                if prev is not None and prev != 0
                else None
            )
            metrics.append(
                {
                    "metric": key,
                    "current": cur,
                    "previous": prev,
                    "ratio": ratio,
                }
            )
        records.append({"name": name, "metrics": metrics})
    return records


def _fmt(v: Optional[float]) -> str:
    if v is None:
        return "-"
    if v == 0:
        return "0"
    if abs(v) >= 1e6 or abs(v) < 1e-3:
        return f"{v:.3g}"
    if v == int(v):
        return str(int(v))
    return f"{v:.4g}"


def render_markdown(records: List[dict], changed_only: bool = False) -> str:
    """One markdown table covering every benchmark's metrics."""
    lines = [
        "| benchmark | metric | current | previous | ratio |",
        "|---|---|---:|---:|---:|",
    ]
    n_rows = 0
    for rec in records:
        if rec.get("error"):
            lines.append(
                f"| {rec['name']} | (unreadable: {rec['error']}) "
                "| - | - | - |"
            )
            continue
        for m in rec["metrics"]:
            if changed_only and m["previous"] is None:
                continue
            ratio = (
                f"{m['ratio']:.2f}x" if m["ratio"] is not None else "-"
            )
            lines.append(
                f"| {rec['name']} | {m['metric']} | {_fmt(m['current'])} "
                f"| {_fmt(m['previous'])} | {ratio} |"
            )
            n_rows += 1
    if n_rows == 0 and len(lines) == 2:
        return "(no benchmark results found)"
    return "\n".join(lines)


def partial_records(state_dir: str) -> List[dict]:
    """An in-progress sweep journal as benchmark-shaped records.

    Bridges ``repro.tools.serve`` state dirs into this tool: each
    sweep cell becomes one record whose metrics are its
    done/pending/retried/adopted/failed counts and elapsed seconds, so
    the
    existing :func:`render_markdown` renders a progress table for a
    run that is still going (or died and awaits resume).
    """
    from repro.service.journal import summarize

    summary = summarize(state_dir)
    records: List[dict] = []
    for label in sorted(summary["labels"]):
        c = summary["labels"][label]
        records.append({
            "name": label,
            "metrics": [
                {"metric": key, "current": float(c[key]),
                 "previous": None, "ratio": None}
                for key in ("planned", "done", "pending", "retried",
                            "adopted", "failed", "elapsed")
            ],
        })
    t = summary["totals"]
    records.append({
        "name": "(total)",
        "metrics": [
            {"metric": key, "current": float(t[key]),
             "previous": None, "ratio": None}
            for key in ("planned", "done", "pending", "retried",
                        "adopted", "failed", "journal_bytes")
        ],
    })
    return records


def _bench_metrics(results_dir: pathlib.Path, bench: str) -> Dict[str, float]:
    path = results_dir / f"BENCH_{bench}.json"
    payload = json.loads(path.read_text())
    data = payload.get("data") or {}
    return _flatten(data) if isinstance(data, dict) else {}


def parse_gate(spec: str):
    """``'<bench>.<metric>=<min_ratio>'`` -> (bench, metric, threshold)."""
    key, sep, thr = spec.partition("=")
    bench, dot, metric = key.partition(".")
    if not sep or not dot or not bench or not metric:
        raise ValueError(
            f"bad gate {spec!r}; expected <bench>.<metric>=<min_ratio>"
        )
    return bench, metric, float(thr)


def run_gates(results_dir: pathlib.Path, baseline_dir: pathlib.Path,
              gates: List[str]) -> int:
    """Check every gate; returns the number of failures.

    A metric ending in ``_seconds`` is lower-is-better, so its ratio is
    ``baseline / current``; anything else is higher-is-better with
    ``current / baseline``.  A gate passes when ratio >= threshold.
    Missing files or metrics count as failures — a gate that cannot
    measure must not silently pass.
    """
    failures = 0
    for spec in gates:
        bench, metric, threshold = parse_gate(spec)
        try:
            current = _bench_metrics(results_dir, bench)
            baseline = _bench_metrics(baseline_dir, bench)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"GATE FAIL {spec}: unreadable results ({exc})")
            failures += 1
            continue
        got = current.get(metric)
        ref = baseline.get(metric)
        if got is None or ref is None or ref == 0 or got == 0:
            print(f"GATE FAIL {spec}: metric missing "
                  f"(current={got}, baseline={ref})")
            failures += 1
            continue
        lower_better = metric.endswith("_seconds")
        ratio = ref / got if lower_better else got / ref
        ok = ratio >= threshold
        direction = "lower-better" if lower_better else "higher-better"
        print(f"GATE {'ok  ' if ok else 'FAIL'} {bench}.{metric}: "
              f"baseline {_fmt(ref)}, current {_fmt(got)} "
              f"-> {ratio:.2f}x ({direction}, min {threshold:.2f})")
        if not ok:
            failures += 1
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.bench_report",
        description="Aggregate benchmarks/results/BENCH_*.json into one "
        "perf-trajectory table (current vs previous per metric).",
    )
    parser.add_argument(
        "--results", metavar="DIR", default=str(DEFAULT_RESULTS),
        help=f"results directory (default: {DEFAULT_RESULTS})",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME", default=None,
        help="restrict to this benchmark (repeatable); names as in "
        "BENCH_<name>.json",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="only rows that have a previous value to compare against",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the aggregation as JSON",
    )
    parser.add_argument(
        "--gate", action="append", metavar="BENCH.METRIC=MIN_RATIO",
        default=None,
        help="perf gate against --baseline (repeatable); *_seconds "
        "metrics compare baseline/current, others current/baseline; "
        "exit 1 if the ratio is below MIN_RATIO",
    )
    parser.add_argument(
        "--baseline", metavar="DIR", default=None,
        help="directory of committed BENCH_*.json files gates compare "
        "against (required with --gate)",
    )
    parser.add_argument(
        "--partial", metavar="STATE_DIR", default=None,
        help="render the progress of an in-flight (or interrupted) "
        "resumable sweep from its journal instead of finished "
        "results: per-cell done/pending/retried/adopted/failed counts "
        "from "
        "STATE_DIR/journal.jsonl (see repro.tools.serve)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.partial:
        records = partial_records(args.partial)
        print(render_markdown(records))
        if args.json:
            with open(args.json, "w") as fh:
                json.dump({"state_dir": args.partial,
                           "cells": records}, fh, indent=2)
            print(f"\n[json -> {args.json}]")
        return 0
    results_dir = pathlib.Path(args.results)
    if not results_dir.is_dir():
        print(f"results directory not found: {results_dir}",
              file=sys.stderr)
        return 1
    if args.gate:
        if not args.baseline:
            print("--gate requires --baseline", file=sys.stderr)
            return 2
        baseline_dir = pathlib.Path(args.baseline)
        if not baseline_dir.is_dir():
            print(f"baseline directory not found: {baseline_dir}",
                  file=sys.stderr)
            return 2
        try:
            failures = run_gates(results_dir, baseline_dir, args.gate)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        return 1 if failures else 0
    records = collect(results_dir, only=args.only)
    print(render_markdown(records, changed_only=args.changed_only))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"results_dir": str(results_dir),
                       "benchmarks": records}, fh, indent=2)
        print(f"\n[json -> {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
