"""CLI: summarize a saved Chrome trace-event file.

Usage::

    python -m repro.tools.trace trace.json
    python -m repro.tools.trace trace.json --all        # every writer
    python -m repro.tools.trace trace.json --top 50
    python -m repro.tools.trace trace.json --check      # nesting audit

Prints overall trace statistics (event counts by phase and category,
time range) followed by the Darshan-style per-writer counter report
from :mod:`repro.trace.counters`.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import List

from repro.trace import chrome, check_well_formed
from repro.trace.counters import per_writer_counters, render_report

__all__ = ["main", "summarize_events"]


def summarize_events(events) -> str:
    """Header block: what is in this trace."""
    if not events:
        return "empty trace"
    by_ph = Counter(ev.ph for ev in events)
    by_cat = Counter(ev.cat for ev in events)
    runs = len({ev.run for ev in events})
    t0 = min(ev.ts for ev in events)
    t1 = max(ev.ts + ev.dur for ev in events)
    lines: List[str] = [
        f"{len(events)} events, {runs} run(s), "
        f"simulated t = [{t0:.4f}s, {t1:.4f}s]",
        "phases:   "
        + ", ".join(f"{ph}={n}" for ph, n in sorted(by_ph.items())),
        "categories: "
        + ", ".join(f"{cat}={n}" for cat, n in by_cat.most_common()),
    ]
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace",
        description="Summarize a Chrome trace-event JSON produced by "
        "the repro tracer (see repro.harness.experiment.trace_to).",
    )
    parser.add_argument("path", help="trace JSON file to summarize")
    parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="show the N slowest writers per run (default: 20)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="show every writer (overrides --top)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="audit span nesting and exit non-zero on problems "
        "(spans still open at trace end are reported but tolerated)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="with --check: also fail on spans left open at trace end",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        events = chrome.load(args.path)
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {args.path} is not a Chrome trace-event file "
              f"({type(exc).__name__}: {exc})", file=sys.stderr)
        return 2
    print(summarize_events(events))
    print()
    if args.check:
        problems = check_well_formed(
            events, allow_unclosed=not args.strict
        )
        if problems:
            print(f"{len(problems)} span-nesting problem(s):")
            for p in problems[:50]:
                print(f"  {p}")
            return 1
        open_spans = len(check_well_formed(events)) - len(problems)
        if open_spans and not args.strict:
            print(f"span nesting: OK ({open_spans} span(s) still open "
                  f"at trace end — background jobs cut off mid-flow)")
        else:
            print("span nesting: OK")
        return 0
    counters = per_writer_counters(events)
    print(render_report(counters, top=None if args.all else args.top))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away mid-report
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
