"""CLI: ad-hoc transport comparison on any machine model.

Usage::

    python -m repro.tools.compare --app pixie3d:large --procs 512 \\
        --machine jaguar --osts 84 --stripe-cap 20 \\
        --methods mpiio adaptive stagger --noise --seed 7
"""

from __future__ import annotations

import argparse
import sys

from repro.core.middleware import Adios
from repro.harness.report import format_table
from repro.interference import (
    BackgroundWriterJob,
    install_production_noise,
)
from repro.units import GB, fmt_bytes

__all__ = ["main", "build_app", "build_spec"]

_MACHINES = ("jaguar", "franklin", "xtp", "bluegene_p")


def build_app(token: str):
    """Parse an app token: "xgc1", "pixie3d:large", "gtc", "s3d",
    "ior:<MB>"."""
    name, _, arg = token.partition(":")
    if name == "pixie3d":
        from repro.apps import pixie3d

        return pixie3d(arg or "large")
    if name == "xgc1":
        from repro.apps import xgc1

        return xgc1()
    if name == "gtc":
        from repro.apps import gtc

        return gtc()
    if name == "s3d":
        from repro.apps import s3d

        return s3d()
    if name == "ior":
        from repro.ior.runner import ior_app
        from repro.units import MB

        return ior_app(float(arg or 128) * MB)
    raise SystemExit(f"unknown app {token!r}")


def build_spec(name: str, n_osts, stripe_cap):
    import repro.machines as machines

    if name not in _MACHINES:
        raise SystemExit(f"unknown machine {name!r}; choose {_MACHINES}")
    factory = getattr(machines, name)
    spec = factory(n_osts) if n_osts else factory()
    if stripe_cap:
        spec = spec.with_overrides(max_stripe_count=stripe_cap)
    return spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.compare",
        description="Compare IO transports on a simulated machine.",
    )
    parser.add_argument("--app", default="xgc1",
                        help="app token, e.g. pixie3d:xl or ior:256")
    parser.add_argument("--machine", default="jaguar", choices=_MACHINES)
    parser.add_argument("--procs", type=int, default=512)
    parser.add_argument("--osts", type=int, default=None,
                        help="storage-target count override")
    parser.add_argument("--stripe-cap", type=int, default=None,
                        help="per-file stripe cap override")
    parser.add_argument(
        "--methods", nargs="+",
        default=["mpiio", "adaptive"],
        choices=Adios.available_methods(),
    )
    parser.add_argument("--noise", action="store_true",
                        help="install live production noise")
    parser.add_argument("--background-job", action="store_true",
                        help="add the paper's 24-process writer job")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    app = build_app(args.app)
    spec = build_spec(args.machine, args.osts, args.stripe_cap)
    print(
        f"{app.name}: {args.procs} procs x "
        f"{fmt_bytes(app.per_process_bytes)} on {spec.name} "
        f"({spec.n_osts} targets, stripe cap {spec.max_stripe_count}, "
        f"seed {args.seed})\n"
    )
    rows = []
    for method in args.methods:
        machine = spec.build(
            n_ranks=args.procs,
            seed=args.seed,
            extra_service_nodes=2 if args.background_job else 0,
        )
        if args.noise:
            install_production_noise(machine, live=True)
        if args.background_job:
            BackgroundWriterJob(machine, write_size=1 * GB).start()
        res = Adios(machine, method=method).write_output(app, name="out")
        rows.append(
            (
                method,
                res.aggregate_bandwidth / 1e9,
                res.reported_time,
                res.imbalance_factor,
                len(res.files),
                res.n_adaptive_writes,
            )
        )
    print(
        format_table(
            ["method", "GB/s", "time (s)", "imbalance", "files",
             "steered"],
            rows,
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
