"""Daemon + client CLI for resumable, checkpointed benchmark sweeps.

Usage::

    # daemon: run artifacts with every sweep cell checkpointed
    python -m repro.tools.serve run fig1 fig3 --state-dir sweep_state \\
        --scale small --jobs 4 --out results.json

    # client: inspect a live (or crashed) run's progress
    python -m repro.tools.serve status --state-dir sweep_state

``run`` executes the requested artifacts through the
:mod:`repro.service` scheduler: completed jobs land in
``STATE_DIR/journal.jsonl`` (append-only JSON-lines, fsync per
record), live progress lands in ``STATE_DIR/status.json``, and the
run's parameters in ``STATE_DIR/manifest.json``.  Kill the daemon at
any point — SIGKILL included — and re-running the *same* command
resumes from the journal: finished cells are restored bit-identically
(the pickled originals), only the remainder recomputes.  Worker
deaths, per-job timeouts, and retry budgets are handled by the
scheduler; when the pool is exhausted the sweep degrades to inline
serial execution rather than dying (see DESIGN.md §14).

``status`` is read-only and safe to run while the daemon is live: it
replays the journal and renders per-cell done/pending/retried/adopted/failed
counts plus whatever the daemon last wrote to ``status.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.harness.experiment import Scale

__all__ = ["main", "build_parser"]

MANIFEST_NAME = "manifest.json"
STATUS_NAME = "status.json"


def _write_json_atomic(path: str, payload: dict) -> None:
    """Write *payload* so readers never observe a half-written file."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


class _StatusWriter:
    """Progress hook: mirrors scheduler stats into ``status.json``.

    Installed process-wide (see
    :func:`repro.service.scheduler.set_progress_hook`) so every nested
    ``run_samples`` batch under the daemon reports in.  Writes are
    atomic and throttled; a batch's final state (all jobs accounted
    for) is always flushed so ``status`` never undercounts a finished
    cell by more than the throttle window.
    """

    def __init__(self, state_dir: str, throttle: float = 0.2):
        self.path = os.path.join(state_dir, STATUS_NAME)
        self.throttle = throttle
        self.state = "running"
        self.artifact = ""
        self.batches: Dict[str, dict] = {}
        self._last_write = 0.0

    def __call__(self, stats) -> None:
        label = stats.label or "?"
        self.batches[label] = {
            "jobs": stats.jobs,
            "done": stats.done,
            "restored": stats.restored,
            "failed": stats.failed,
            "retries": stats.retries,
            "adoptions": stats.adoptions,
            "timeouts": stats.timeouts,
            "respawns": stats.respawns,
            "serial_fallback": stats.serial_fallback,
        }
        final = stats.done + stats.restored + stats.failed >= stats.jobs
        now = time.monotonic()
        if final or now - self._last_write >= self.throttle:
            self._last_write = now
            self.flush()

    def totals(self) -> dict:
        out = {
            k: sum(b[k] for b in self.batches.values())
            for k in ("jobs", "done", "restored", "failed", "retries",
                      "adoptions", "timeouts", "respawns")
        }
        out["batches"] = len(self.batches)
        return out

    def flush(self, state: Optional[str] = None,
              extra: Optional[dict] = None) -> None:
        if state is not None:
            self.state = state
        payload = {
            "state": self.state,
            "artifact": self.artifact,
            "pid": os.getpid(),
            "updated_unix": time.time(),
            "totals": self.totals(),
            "batches": self.batches,
        }
        if extra:
            payload.update(extra)
        _write_json_atomic(self.path, payload)


def _check_manifest(state_dir: str, names: List[str], scale: str,
                    seed: int) -> None:
    """Create or validate ``manifest.json`` for a (re)run.

    Job ids hash the cell's spec and seed, so resuming with a
    different scale or seed would not *corrupt* anything — it would
    silently recompute everything while looking like a resume.  That
    is always a mistake, so mismatches are rejected with a pointer at
    a fresh state dir.
    """
    path = os.path.join(state_dir, MANIFEST_NAME)
    manifest = _read_json(path)
    if manifest is None:
        _write_json_atomic(path, {
            "artifacts": names,
            "scale": scale,
            "seed": seed,
            "created_unix": time.time(),
        })
        return
    for key, value in (("scale", scale), ("seed", seed)):
        if manifest.get(key) != value:
            raise SystemExit(
                f"error: state dir {state_dir!r} was created with "
                f"{key}={manifest.get(key)!r} but this run asks for "
                f"{value!r}; resuming would recompute every cell. "
                "Use a fresh --state-dir (or delete this one)."
            )
    if sorted(manifest.get("artifacts", [])) != sorted(names):
        # Differing artifact lists are fine (ids are per-cell); keep
        # the manifest's list current for `status`.
        merged = sorted(set(manifest.get("artifacts", [])) | set(names))
        manifest["artifacts"] = merged
        _write_json_atomic(path, manifest)


def _run(args) -> int:
    from repro.tools.experiment import ARTIFACTS, artifact_failures

    names = (
        sorted(ARTIFACTS)
        if "all" in args.artifact
        else list(dict.fromkeys(args.artifact))
    )
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        raise SystemExit(
            f"error: unknown artifact(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(ARTIFACTS))} or 'all'"
        )
    state_dir = args.state_dir
    os.makedirs(state_dir, exist_ok=True)
    _check_manifest(state_dir, names, args.scale, args.seed)

    os.environ["REPRO_JOURNAL"] = state_dir
    if args.serial:
        os.environ["REPRO_JOBS"] = "1"
    elif args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.job_timeout is not None:
        os.environ["REPRO_JOB_TIMEOUT"] = str(args.job_timeout)
    if args.max_retries is not None:
        os.environ["REPRO_JOB_RETRIES"] = str(args.max_retries)

    from repro.service.scheduler import set_progress_hook

    status = _StatusWriter(state_dir)
    status.flush(state="running")
    set_progress_hook(status)

    out: Dict[str, dict] = {}
    failures: List[str] = []
    code = 0
    try:
        for name in names:
            status.artifact = name
            status.flush()
            print(f"[serve] {name} @ {args.scale}, seed {args.seed} ...",
                  flush=True)
            start = time.time()
            try:
                result = ARTIFACTS[name](
                    Scale.parse(args.scale), args.seed
                )
            except Exception as exc:
                failures.append(f"{name}: {exc}")
                out[name] = {"ok": False, "error": str(exc)}
                print(f"[serve] {name}: FAILED\n{exc}", file=sys.stderr,
                      flush=True)
                if args.fail_fast:
                    break
                continue
            elapsed = time.time() - start
            degraded = artifact_failures(result)
            failures.extend(f"{name}: {d}" for d in degraded)
            to_dict = getattr(result, "to_dict", None)
            out[name] = {
                "ok": not degraded,
                "elapsed": round(elapsed, 3),
                "degraded_cells": degraded,
                "data": to_dict() if callable(to_dict) else None,
            }
            print(result.render(), flush=True)
            print(f"[serve] {name}: done in {elapsed:.1f}s", flush=True)
            if degraded and args.fail_fast:
                break
    except KeyboardInterrupt:
        status.flush(state="interrupted")
        print("[serve] interrupted; journal is resumable — rerun the "
              "same command to continue", file=sys.stderr)
        return 130
    finally:
        set_progress_hook(None)

    code = 1 if failures else 0
    status.flush(
        state="failed" if failures else "done",
        extra={"failures": failures},
    )
    if args.out:
        _write_json_atomic(args.out, {
            "scale": args.scale,
            "seed": args.seed,
            "state_dir": state_dir,
            "artifacts": out,
            "failures": failures,
        })
        print(f"[serve] results -> {args.out}", flush=True)
    if failures:
        print(f"[serve] {len(failures)} failure(s)", file=sys.stderr)
    return code


def _fmt_seconds(s: float) -> str:
    return f"{s:.1f}s" if s < 120 else f"{s / 60:.1f}m"


def _status(args) -> int:
    from repro.harness.report import format_table
    from repro.service.journal import summarize

    state_dir = args.state_dir
    summary = summarize(state_dir)
    manifest = _read_json(os.path.join(state_dir, MANIFEST_NAME))
    live = _read_json(os.path.join(state_dir, STATUS_NAME))
    if args.json:
        print(json.dumps(
            {"manifest": manifest, "status": live, "journal": summary},
            indent=2, sort_keys=True,
        ))
        return 0
    if manifest:
        print(
            f"sweep: {' '.join(manifest.get('artifacts', []))} "
            f"@ {manifest.get('scale')}, seed {manifest.get('seed')}"
        )
    if live:
        print(f"daemon: {live.get('state')} "
              f"(pid {live.get('pid')}, artifact "
              f"{live.get('artifact') or '-'})")
    totals = summary["totals"]
    if not summary["labels"]:
        print(f"no journal in {state_dir!r} yet")
        return 0
    rows = []
    for label in sorted(summary["labels"]):
        c = summary["labels"][label]
        rows.append((
            label, int(c["planned"]), int(c["done"]), int(c["pending"]),
            int(c["retried"]), int(c.get("adopted", 0)),
            int(c["failed"]),
            _fmt_seconds(c["elapsed"]),
        ))
    print(format_table(
        ["cell", "planned", "done", "pending", "retried", "adopted",
         "failed", "elapsed"],
        rows,
        title=f"journal @ {state_dir}",
    ))
    print(
        f"\n{totals['done']}/{totals['planned']} jobs done, "
        f"{totals['pending']} pending, {totals['retried']} retried, "
        f"{totals.get('adopted', 0)} adopted, "
        f"{totals['failed']} failed; journal "
        f"{totals['journal_bytes']} bytes"
        + (f" ({totals['discarded_lines']} corrupt line(s) ignored)"
           if totals["discarded_lines"] else "")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.serve",
        description=(
            "Resumable benchmark-sweep daemon: run paper artifacts "
            "with every sweep cell checkpointed to a journal, and "
            "inspect progress from another terminal."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="run artifacts under the checkpointing scheduler "
        "(rerun the same command to resume after any crash)",
    )
    run.add_argument(
        "artifact", nargs="+",
        help="artifact names (see repro.tools.experiment) or 'all'",
    )
    run.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="journal/manifest/status directory; the resume token",
    )
    run.add_argument(
        "--scale", default="small", choices=[s.value for s in Scale],
        help="experiment size preset (default: small)",
    )
    run.add_argument(
        "--seed", type=int, default=0, help="base random seed"
    )
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (0 = all cores; default: REPRO_JOBS, "
        "else serial)",
    )
    run.add_argument(
        "--serial", action="store_true",
        help="force inline execution (no worker pool); still "
        "checkpoints and resumes",
    )
    run.add_argument(
        "--job-timeout", type=float, default=None, metavar="SEC",
        help="per-job wall-clock budget; a job past it is killed and "
        "retried (default: unbounded)",
    )
    run.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retry budget per job for crashes/timeouts (default: "
        "the fault subsystem's RetryPolicy, 3)",
    )
    run.add_argument(
        "--out", metavar="PATH", default=None,
        help="write final machine-readable results JSON here",
    )
    run.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first failing artifact",
    )
    run.set_defaults(fn=_run)

    status = sub.add_parser(
        "status",
        help="render a state dir's journal progress (read-only; safe "
        "while the daemon runs)",
    )
    status.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="the daemon's --state-dir",
    )
    status.add_argument(
        "--json", action="store_true",
        help="dump manifest + live status + journal summary as JSON",
    )
    status.set_defaults(fn=_status)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
