"""The paper's artificial-interference program, reimplemented.

Section IV: "External interference is introduced through a separate
program that continuously writes to a file striped across 8 storage
targets ... Three processes each write 1 GB continuously to a single
storage target, for a total of 24 processes."  A stripe count of 8 was
chosen "to reflect two applications writing using the default stripe
count of 4".

The job issues *real* flows on the fabric from reserved service nodes,
so it contends with the instrumented application exactly the way a
second batch job would: through OST caches, drain bandwidth, and
(if co-located) NIC share.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.units import GB

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.base import Machine

__all__ = ["BackgroundWriterJob"]


class BackgroundWriterJob:
    """Continuously-writing interference job.

    Parameters
    ----------
    machine:
        Host machine (must have service nodes reserved unless
        ``source_nodes`` is given).
    n_osts:
        Storage targets hammered (paper: 8).
    writers_per_ost:
        Concurrent writers per target (paper: 3).
    write_size:
        Bytes per write iteration (paper: 1 GB).
    osts:
        Explicit target list; defaults to the *first* ``n_osts`` of
        the pool, which the instrumented job's default allocation also
        uses — so the two jobs genuinely collide, as they did on the
        shared Jaguar scratch system.
    source_nodes:
        Source node indices; defaults to the machine's service nodes.
    tenant:
        QoS tenant index stamped on every interference flow (default
        ``-1``: untagged, outside any contract).  Tagging the
        interferer lets the control plane attribute — and throttle —
        the aggressor instead of treating it as weather.
    """

    def __init__(
        self,
        machine: "Machine",
        n_osts: int = 8,
        writers_per_ost: int = 3,
        write_size: float = 1.0 * GB,
        osts: Optional[Sequence[int]] = None,
        source_nodes: Optional[Sequence[int]] = None,
        tenant: int = -1,
    ):
        if n_osts < 1 or writers_per_ost < 1:
            raise ValueError("n_osts and writers_per_ost must be >= 1")
        if write_size <= 0:
            raise ValueError("write_size must be positive")
        self.machine = machine
        pool_n = machine.pool.n_sinks
        if osts is None:
            if n_osts > pool_n:
                raise ValueError(
                    f"n_osts {n_osts} exceeds pool size {pool_n}"
                )
            osts = list(range(n_osts))
        self.osts: List[int] = list(osts)
        if len(self.osts) != n_osts:
            raise ValueError("len(osts) must equal n_osts")
        self.writers_per_ost = writers_per_ost
        self.write_size = write_size
        n_writers = n_osts * writers_per_ost
        if source_nodes is None:
            if machine.n_service_nodes < 1:
                raise ValueError(
                    "machine has no service nodes; build with "
                    "extra_service_nodes>=1 or pass source_nodes"
                )
            source_nodes = [
                machine.service_node(i % machine.n_service_nodes)
                for i in range(n_writers)
            ]
        self.source_nodes = list(source_nodes)
        if len(self.source_nodes) != n_writers:
            raise ValueError(
                f"need {n_writers} source nodes, got {len(self.source_nodes)}"
            )
        self.tenant = int(tenant)
        self._stop = False
        self._procs = []
        self.bytes_written = 0.0
        self.iterations = 0

    @property
    def n_writers(self) -> int:
        return len(self.source_nodes)

    def _writer(self, ost: int, node: int):
        env = self.machine.env
        fabric = self.machine.fs.fabric
        while not self._stop:
            yield fabric.start_flow(
                node, ost, self.write_size, tenant=self.tenant
            )
            self.bytes_written += self.write_size
            self.iterations += 1

    def start(self) -> None:
        """Launch all writer loops."""
        if self._procs:
            raise RuntimeError("job already started")
        w = 0
        for ost in self.osts:
            for _ in range(self.writers_per_ost):
                node = self.source_nodes[w]
                w += 1
                self._procs.append(
                    self.machine.env.process(
                        self._writer(ost, node), name=f"bg.w{w}"
                    )
                )

    def stop(self) -> None:
        """Ask all writers to stop after their current write."""
        self._stop = True
