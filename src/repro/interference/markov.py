"""Markov-modulated external load on storage targets.

The statistical model behind production-system noise.  Two layers
multiply together into each OST's load multiplier:

* a **global chain** — system-wide busy periods (another petascale job
  dumping restart data slows the whole scratch system), responsible
  for most of the sample-to-sample CoV of aggregate bandwidth; and
* **per-OST chains** — localized hot spots (an analysis cluster
  rereading a file resident on a handful of targets), responsible for
  the intra-sample imbalance between fastest and slowest writers that
  Fig. 3 shows and that adaptive IO exploits.

Multipliers are drawn log-uniformly within each state's band, so a
"hot" OST is not a fixed penalty but a distribution — two samples
minutes apart can look completely different, the transience the paper
emphasizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.base import Machine

__all__ = ["LoadState", "MarkovLoadModel"]


@dataclass(frozen=True)
class LoadState:
    """One state of a load chain.

    Parameters
    ----------
    name:
        Label ("quiet", "busy", "storm").
    mult_low, mult_high:
        Log-uniform band of the load multiplier while in this state
        (1.0 means no external traffic).
    mean_dwell:
        Mean sojourn time, seconds (exponentially distributed).
    """

    name: str
    mult_low: float
    mult_high: float
    mean_dwell: float

    def __post_init__(self):
        if not 0 < self.mult_low <= self.mult_high <= 1.0:
            raise ValueError(
                f"state {self.name!r}: need 0 < low <= high <= 1"
            )
        if self.mean_dwell <= 0:
            raise ValueError(f"state {self.name!r}: mean_dwell must be > 0")

    def draw_multiplier(self, rng: np.random.Generator) -> float:
        lo, hi = np.log(self.mult_low), np.log(self.mult_high)
        return float(np.exp(rng.uniform(lo, hi)))


class MarkovLoadModel:
    """A continuous-time Markov chain over :class:`LoadState` s.

    Parameters
    ----------
    states:
        The chain's states.
    transitions:
        Row-stochastic jump matrix: ``transitions[i][j]`` is the
        probability of jumping to state *j* when leaving state *i*.
    """

    def __init__(
        self,
        states: Sequence[LoadState],
        transitions: Sequence[Sequence[float]],
    ):
        self.states: List[LoadState] = list(states)
        if not self.states:
            raise ValueError("need at least one state")
        P = np.asarray(transitions, dtype=np.float64)
        n = len(self.states)
        if P.shape != (n, n):
            raise ValueError(f"transition matrix must be {n}x{n}")
        if (P < 0).any():
            raise ValueError("transition probabilities must be >= 0")
        if not np.allclose(P.sum(axis=1), 1.0):
            raise ValueError("transition matrix rows must sum to 1")
        self.P = P

    # -- stationary analysis ----------------------------------------------
    def stationary_distribution(self) -> np.ndarray:
        """Long-run fraction of *time* spent in each state.

        Combines the embedded jump chain's stationary vector with the
        mean dwell times (time-weighted, not jump-weighted).
        """
        n = len(self.states)
        if n == 1:
            return np.ones(1)
        # Stationary vector of the embedded chain: pi P = pi.
        A = np.vstack([self.P.T - np.eye(n), np.ones(n)])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi_jump, *_ = np.linalg.lstsq(A, b, rcond=None)
        pi_jump = np.clip(pi_jump, 0, None)
        dwell = np.array([s.mean_dwell for s in self.states])
        w = pi_jump * dwell
        return w / w.sum()

    def sample_stationary_state(self, rng: np.random.Generator) -> int:
        return int(rng.choice(len(self.states),
                              p=self.stationary_distribution()))

    def sample_stationary_multipliers(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw *n* independent stationary multipliers (one per OST).

        This is how multi-sample experiments initialize each sample:
        hourly IOR probes see the chain at a random phase, which is
        exactly a stationary draw.
        """
        pi = self.stationary_distribution()
        idx = rng.choice(len(self.states), size=n, p=pi)
        out = np.empty(n)
        for i, s in enumerate(idx):
            out[i] = self.states[s].draw_multiplier(rng)
        return out

    # -- live evolution ----------------------------------------------------
    def run_chain(
        self,
        machine: "Machine",
        apply,
        rng: np.random.Generator,
        initial_state: Optional[int] = None,
    ):
        """A simulation process evolving one chain instance.

        ``apply(multiplier)`` is invoked on every state entry — the
        caller decides whether the multiplier drives one OST or the
        global modulator.
        """
        env = machine.env
        state = (
            self.sample_stationary_state(rng)
            if initial_state is None
            else initial_state
        )
        while True:
            st = self.states[state]
            apply(st.draw_multiplier(rng))
            dwell = float(rng.exponential(st.mean_dwell))
            yield env.timeout(dwell)
            state = int(rng.choice(len(self.states), p=self.P[state]))


def per_ost_chain() -> MarkovLoadModel:
    """Default per-OST hot-spot chain.

    ~85% of time quiet, ~11% moderately busy, ~4% hot; hot targets run
    at 12-35% of peak.  Hot targets are *rare but deep*: on a
    512-target probe there is almost always at least one (so Fig. 3's
    slowest/fastest imbalance factors of 1.2-5 and the paper's 4.07
    average emerge), while a 160-target file often has only a couple —
    matching Fig. 3's "one slow writer out of 512" pattern rather than
    blanketing the system.
    """
    return MarkovLoadModel(
        states=[
            LoadState("quiet", 0.92, 1.00, mean_dwell=420.0),
            LoadState("busy", 0.38, 0.75, mean_dwell=60.0),
            LoadState("hot", 0.08, 0.32, mean_dwell=40.0),
        ],
        transitions=[
            [0.00, 0.75, 0.25],
            [0.70, 0.00, 0.30],
            [0.55, 0.45, 0.00],
        ],
    )


def global_chain() -> MarkovLoadModel:
    """Default system-wide modulator chain.

    Correlated busy periods — the dominant contributor to the 40-60%
    CoV of aggregate bandwidth across hourly samples in Table I.
    """
    return MarkovLoadModel(
        states=[
            LoadState("calm", 0.88, 1.00, mean_dwell=600.0),
            LoadState("busy", 0.45, 0.80, mean_dwell=420.0),
            LoadState("storm", 0.20, 0.42, mean_dwell=240.0),
        ],
        transitions=[
            [0.00, 0.80, 0.20],
            [0.65, 0.00, 0.35],
            [0.40, 0.60, 0.00],
        ],
    )


def global_chain_heavy() -> MarkovLoadModel:
    """A heavier system-wide modulator (Franklin-class systems).

    Franklin's scratch system was smaller and more oversubscribed
    than Jaguar's, and NERSC's monitoring shows correspondingly wider
    swings (Table I: CoV ~59% vs Jaguar's ~40%).  Deeper and more
    frequent storms produce that band.
    """
    return MarkovLoadModel(
        states=[
            LoadState("calm", 0.85, 1.00, mean_dwell=480.0),
            LoadState("busy", 0.35, 0.70, mean_dwell=480.0),
            LoadState("storm", 0.10, 0.30, mean_dwell=360.0),
        ],
        transitions=[
            [0.00, 0.70, 0.30],
            [0.55, 0.00, 0.45],
            [0.40, 0.60, 0.00],
        ],
    )
