"""Composite production noise: global x per-OST Markov load.

This module wires :mod:`repro.interference.markov` chains onto a live
machine.  It keeps the two layers' current values and pushes their
product into the OST pool whenever either changes (each push triggers
a fabric resettle, so running jobs feel the change immediately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.interference.markov import (
    MarkovLoadModel,
    global_chain,
    global_chain_heavy,
    per_ost_chain,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.base import Machine

__all__ = ["production_noise", "install_production_noise", "ProductionNoise"]


@dataclass(frozen=True)
class NoisePreset:
    """Per-machine noise intensity.

    ``per_ost`` / ``global_mod`` are the chains;
    ``intensity`` in [0, 1] linearly interpolates each drawn
    multiplier toward 1.0 (0 = no noise at all).
    """

    per_ost: MarkovLoadModel
    global_mod: MarkovLoadModel
    intensity: float = 1.0


_PRESETS = {
    # Jaguar: busy shared production scratch (Table I CoV ~ 40%).
    "jaguar": lambda: NoisePreset(per_ost_chain(), global_chain(), 1.0),
    # Franklin: smaller, even more oversubscribed system (CoV ~ 59%).
    "franklin": lambda: NoisePreset(
        per_ost_chain(), global_chain_heavy(), 1.0
    ),
    # XTP: non-production machine — negligible ambient noise.
    "xtp": lambda: NoisePreset(per_ost_chain(), global_chain(), 0.05),
    # BG/P with GPFS (future-work extension): production system,
    # moderately shared.
    "bluegene_p": lambda: NoisePreset(per_ost_chain(), global_chain(), 0.8),
}


def production_noise(machine_name: str) -> NoisePreset:
    """The noise preset for a machine name ("jaguar", "franklin", "xtp")."""
    try:
        factory = _PRESETS[machine_name]
    except KeyError:
        raise ValueError(
            f"no noise preset for {machine_name!r}; "
            f"known: {sorted(_PRESETS)}"
        ) from None
    return factory()


class ProductionNoise:
    """Live noise bound to one machine."""

    def __init__(self, machine: "Machine", preset: NoisePreset,
                 stream: str = "noise"):
        self.machine = machine
        self.preset = preset
        n = machine.pool.n_sinks
        self._per_ost = np.ones(n)
        self._global = 1.0
        self._stream = stream
        self._started = False

    def _soften(self, mult: float) -> float:
        a = self.preset.intensity
        return 1.0 - a * (1.0 - mult)

    def _push(self) -> None:
        """Push the composite field into the pool.

        Both layers hit the drain (disks) at full depth.  The ingest
        (OSS/RPC) stage sees per-OST hot spots at full depth too —
        they model contention *at* that server, the mechanism behind
        Fig. 3's deep slow-writer tails — but the system-wide
        modulator only at the pool's softened exponent, since backbone
        traffic barely touches an absorbed write's RPC path.
        """
        pool = self.machine.pool
        gamma = pool.config.ingest_noise_exponent
        pool.set_load_multiplier(
            self._per_ost * self._global,
            ingest_mult=self._per_ost * self._global**gamma,
        )

    def _apply_global(self, mult: float) -> None:
        self._global = self._soften(mult)
        self._push()

    def _make_ost_apply(self, ost: int):
        def apply(mult: float) -> None:
            self._per_ost[ost] = self._soften(mult)
            self._push()

        return apply

    def initialize_stationary(self) -> None:
        """Draw the initial field from the stationary distributions.

        Multi-sample experiments call only this (one draw per sample);
        :meth:`start` additionally evolves the field over time.
        """
        rngs = self.machine.rngs
        n = self.machine.pool.n_sinks
        per = self.preset.per_ost.sample_stationary_multipliers(
            n, rngs.get(f"{self._stream}.per_ost.init")
        )
        g = self.preset.global_mod.sample_stationary_multipliers(
            1, rngs.get(f"{self._stream}.global.init")
        )[0]
        soften = np.vectorize(self._soften)
        self._per_ost = soften(per)
        self._global = self._soften(g)
        self._push()

    def start(self) -> None:
        """Launch the live chains (per-OST + global) as sim processes."""
        if self._started:
            raise RuntimeError("noise already started")
        self._started = True
        m = self.machine
        rngs = m.rngs
        m.env.process(
            self.preset.global_mod.run_chain(
                m, self._apply_global, rngs.get(f"{self._stream}.global")
            ),
            name="noise.global",
        )
        for ost in range(m.pool.n_sinks):
            m.env.process(
                self.preset.per_ost.run_chain(
                    m,
                    self._make_ost_apply(ost),
                    rngs.get(f"{self._stream}.ost.{ost}"),
                ),
                name=f"noise.ost.{ost}",
            )

    def current_multipliers(self) -> np.ndarray:
        return self._per_ost * self._global


def install_production_noise(
    machine: "Machine",
    preset: Optional[NoisePreset] = None,
    live: bool = True,
) -> ProductionNoise:
    """Attach production noise to a machine and initialize it.

    ``live=False`` gives a frozen stationary draw — the right choice
    for short experiments sampled independently; ``live=True``
    additionally evolves the field during the run (needed for Fig. 3's
    "three minutes later everything changed" behaviour).
    """
    if preset is None:
        preset = production_noise(machine.spec.name)
    noise = ProductionNoise(machine, preset)
    noise.initialize_stationary()
    if live:
        noise.start()
    return noise
