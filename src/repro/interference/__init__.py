"""External-interference generators.

Two mechanisms, matching the paper's two experimental setups:

* :class:`~repro.interference.markov.MarkovLoadModel` — statistical
  *production* noise: Markov-modulated per-OST load multipliers plus a
  correlated system-wide modulator.  This stands in for the mixture of
  other batch jobs and analysis clusters sharing Jaguar's and
  Franklin's scratch systems, and is calibrated to reproduce Table I's
  40-60% coefficients of variation and Fig. 3's transient per-OST
  imbalance.
* :class:`~repro.interference.background.BackgroundWriterJob` — the
  paper's explicit artificial-interference program: 24 processes,
  three per storage target, continuously writing 1 GB each to a file
  striped over 8 OSTs.  These are *real* flows contending on the
  fabric, exactly like the instrumented job's writes.
"""

from repro.interference.markov import LoadState, MarkovLoadModel
from repro.interference.background import BackgroundWriterJob
from repro.interference.production import (
    production_noise,
    install_production_noise,
)

__all__ = [
    "BackgroundWriterJob",
    "LoadState",
    "MarkovLoadModel",
    "install_production_noise",
    "production_noise",
]
