"""repro — a reproduction of "Managing Variability in the IO
Performance of Petascale Storage Systems" (Lofstead et al., SC 2010).

The package contains two things:

1. **A discrete-event petascale storage simulator** — compute-node
   topology, a max-min-fair fluid network, Lustre-/PanFS-like storage
   targets with write-back caches and concurrency-dependent
   efficiency, a metadata server, simulated MPI, and Markov-modulated
   external interference (:mod:`repro.sim`, :mod:`repro.net`,
   :mod:`repro.lustre`, :mod:`repro.mpi`, :mod:`repro.interference`,
   :mod:`repro.machines`).
2. **The paper's contribution on top of it** — ADIOS-style middleware
   with POSIX, MPI-IO (baseline), stagger, split-files and **Adaptive
   IO** transports, BP-style sub-files with local/global indices and
   data characteristics (:mod:`repro.core`), plus the application
   kernels (:mod:`repro.apps`), IOR (:mod:`repro.ior`), metrics
   (:mod:`repro.metrics`) and the per-figure experiment harness
   (:mod:`repro.harness`).

Quick start::

    from repro.machines import jaguar
    from repro.apps import xgc1
    from repro.core import Adios

    machine = jaguar(n_osts=84).build(n_ranks=512, seed=0)
    io = Adios(machine, method="adaptive")
    result = io.write_output(xgc1())
    print(result.aggregate_bandwidth / 1e9, "GB/s")
"""

from repro.core.api import write_output
from repro.core.middleware import Adios
from repro.machines import franklin, jaguar, xtp

__version__ = "1.0.0"

__all__ = [
    "Adios",
    "__version__",
    "franklin",
    "jaguar",
    "write_output",
    "xtp",
]
