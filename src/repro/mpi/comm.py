"""The simulated communicator."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.net.latency import MessageLatencyModel
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "SimComm"]

ANY_SOURCE = -1
ANY_TAG = -1

_CONTROL_MSG_BYTES = 64.0  # default on-wire size of a control message


@dataclass(frozen=True)
class Message:
    """A delivered message."""

    source: int
    dest: int
    tag: int
    payload: Any
    sent_at: float
    delivered_at: float


class _Inbox:
    """Per-rank mailbox with MPI-style (source, tag) matching."""

    __slots__ = ("pending", "waiters")

    def __init__(self):
        self.pending: Deque[Message] = deque()
        # waiters: (source_filter, tag_filter, event)
        self.waiters: List[Tuple[int, int, Event]] = []

    @staticmethod
    def _matches(msg: Message, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or msg.source == source) and (
            tag == ANY_TAG or msg.tag == tag
        )

    def deliver(self, msg: Message) -> None:
        for i, (src, tag, ev) in enumerate(self.waiters):
            if self._matches(msg, src, tag):
                del self.waiters[i]
                ev.succeed(msg)
                return
        self.pending.append(msg)

    def post_recv(self, env, source: int, tag: int) -> Event:
        ev = Event(env)
        for i, msg in enumerate(self.pending):
            if self._matches(msg, source, tag):
                del self.pending[i]
                ev.succeed(msg)
                return ev
        self.waiters.append((source, tag, ev))
        return ev


class SimComm:
    """A communicator over *n_ranks* simulated processes.

    Parameters
    ----------
    env:
        Simulation environment.
    n_ranks:
        Communicator size.
    latency:
        alpha-beta model for control messages.
    """

    def __init__(
        self,
        env: "Environment",
        n_ranks: int,
        latency: Optional[MessageLatencyModel] = None,
    ):
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.env = env
        self.n_ranks = n_ranks
        self.latency = latency if latency is not None else MessageLatencyModel()
        self._inboxes = [_Inbox() for _ in range(n_ranks)]
        self._barriers: Dict[str, Tuple[int, Event]] = {}
        self.messages_sent = 0
        self.messages_by_rank: Dict[int, int] = {}
        # Optional fault hook (a FaultInjector): consulted per send for
        # loss/extra delay.  None in fault-free runs — zero overhead.
        self.faults = None

    def _check_rank(self, rank: int, what: str = "rank") -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"{what} {rank} out of range [0, {self.n_ranks})")

    # -- point to point ------------------------------------------------------
    def send(
        self,
        source: int,
        dest: int,
        payload: Any,
        tag: int = 0,
        nbytes: float = _CONTROL_MSG_BYTES,
    ) -> Event:
        """Asynchronous send; the returned event fires at delivery.

        Callers normally do not wait on it (MPI_Isend-and-forget); the
        message lands in ``dest``'s inbox after the modelled latency.
        """
        self._check_rank(source, "source")
        self._check_rank(dest, "dest")
        sent_at = self.env.now
        self.messages_sent += 1
        self.messages_by_rank[source] = self.messages_by_rank.get(source, 0) + 1
        delay = self.latency.point_to_point(nbytes)
        done = Event(self.env)
        if self.faults is not None:
            extra = self.faults.perturb_send(source, dest)
            if extra is None:
                # Dropped on the wire: sends are fire-and-forget, so the
                # message simply never arrives (the returned event stays
                # pending forever — nobody waits on it).
                return done
            delay += extra

        def deliver() -> None:
            msg = Message(
                source=source,
                dest=dest,
                tag=tag,
                payload=payload,
                sent_at=sent_at,
                delivered_at=self.env.now,
            )
            self._inboxes[dest].deliver(msg)
            tr = self.env.tracer
            if tr is not None and tr.enabled:
                # One complete span per message, send -> delivery.
                name = (
                    payload.__class__.__name__
                    if payload is not None
                    else "message"
                )
                tr.complete(
                    name,
                    cat="mpi",
                    pid="mpi",
                    tid=f"rank {dest}",
                    ts=sent_at,
                    dur=self.env.now - sent_at,
                    args={"source": source, "dest": dest, "tag": tag},
                )
            done.succeed(msg)

        self.env.schedule_callback(delay, deliver)
        return done

    def recv(
        self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Event:
        """Event yielding the next matching :class:`Message` for *rank*."""
        self._check_rank(rank)
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        return self._inboxes[rank].post_recv(self.env, source, tag)

    def inbox_size(self, rank: int) -> int:
        self._check_rank(rank)
        return len(self._inboxes[rank].pending)

    # -- collectives -----------------------------------------------------------
    def barrier(self, rank: int, name: str = "default", n: Optional[int] = None):
        """Generator: block until all *n* participants arrive.

        Distinct synchronization points must use distinct ``name``s (or
        a generation suffix) — like MPI, barriers on one communicator
        must be called in the same order by all participants.
        """
        self._check_rank(rank)
        count = self.n_ranks if n is None else n
        entry = self._barriers.get(name)
        if entry is None:
            release = Event(self.env)
            arrived = 1
        else:
            arrived, release = entry
            arrived += 1
        if arrived == count:
            self._barriers.pop(name, None)
            # All present: release everyone after a tree latency.
            delay = self.latency.tree_collective(0.0, count)
            self.env.schedule_callback(delay, lambda: release.succeed())
        else:
            self._barriers[name] = (arrived, release)
        yield release

    def bcast(self, rank: int, root: int, value: Any = None, name: str = "bcast"):
        """Generator: broadcast ``value`` from root; returns it on all ranks.

        Implemented as a named rendezvous with tree-collective timing.
        """
        self._check_rank(rank)
        self._check_rank(root, "root")
        key = f"__bcast__{name}"
        entry = self._barriers.get(key)
        if entry is None:
            entry = [0, Event(self.env), None]
        arrived, release, stored = entry
        arrived += 1
        if rank == root:
            stored = value
        if arrived == self.n_ranks:
            self._barriers.pop(key, None)
            delay = self.latency.tree_collective(
                _CONTROL_MSG_BYTES, self.n_ranks
            )
            payload = stored
            self.env.schedule_callback(
                delay, lambda: release.succeed(payload)
            )
        else:
            self._barriers[key] = [arrived, release, stored]
        result = yield release
        return result
