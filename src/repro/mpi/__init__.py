"""Simulated MPI: ranks, tagged point-to-point messaging, collectives.

The adaptive-IO protocol (Algorithms 1-3 of the paper) is a
message-driven distributed algorithm; this package provides just
enough of MPI's semantics to implement it verbatim: ranks hosted as
simulation processes, ``send``/``recv`` with tag and source matching
(including wildcards), and tree-cost collectives.  Message timing uses
the alpha-beta latency model; bulk data still travels on the fluid
fabric — control and data planes are separate, as on a real machine.
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Message, SimComm

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "SimComm"]
