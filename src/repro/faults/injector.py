"""The live fault injector bound to one machine build.

Turns a materialized :class:`~repro.faults.plan.FaultPlan` timeline
into simulation-calendar callbacks that drive the storage pool's fault
state, error in-flight fabric flows, kill registered rank processes,
and perturb control messages.  Everything is deterministic: the
timeline is fixed at arm time and message-loss draws come from a
dedicated RNG stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.faults.plan import CORRUPTION_KINDS, FaultEvent, FaultPlan
from repro.lustre.ost import OstState

if TYPE_CHECKING:  # pragma: no cover
    from repro.lustre.file import SimFile, StoredBlock
    from repro.lustre.filesystem import FileSystem
    from repro.sim.engine import Environment
    from repro.sim.process import Process

__all__ = ["FaultInjector"]

#: XOR mask applied to a stored checksum to model a bit flip in the
#: stored bytes: any flip breaks the content/checksum equality, the
#: exact mask is irrelevant.
_CKSUM_FLIP = 0xA5A5A5A5A5A5A5A5


class FaultInjector:
    """Applies a fault timeline to a live machine.

    Parameters
    ----------
    env, fs:
        The machine's environment and file system (the pool and fabric
        are reached through ``fs``).
    plan:
        The declarative plan; its stochastic part is expanded here.
    rngs:
        The machine's :class:`~repro.sim.rng.RngRegistry`; the
        ``"faults"`` stream materializes the timeline and
        ``"faults.msg"`` draws message-loss coin flips.
    n_ranks:
        Communicator size, for crash-target validation.
    """

    def __init__(
        self,
        env: "Environment",
        fs: "FileSystem",
        plan: FaultPlan,
        rngs,
        n_ranks: int,
    ):
        self.env = env
        self.fs = fs
        self.plan = plan
        self.policy = plan.policy
        self.timeline: Tuple[FaultEvent, ...] = plan.materialize(
            rngs.get("faults"), fs.pool.n_sinks, n_ranks
        )
        self._msg_rng = rngs.get("faults.msg")
        self._corrupt_rng = rngs.get("faults.corrupt")
        self.crashed_ranks: Set[int] = set()
        self.injected: List[Tuple[float, FaultEvent]] = []
        self.msg_loss_p = 0.0
        self.msg_delay_extra = 0.0
        self.messages_dropped = 0
        #: Every block mutation this injector performed, for post-run
        #: auditing (scrub detection rates are measured against stored
        #: state, not this ledger — a rewritten block is healthy again).
        self.corruption_ledger: List[Dict] = []
        self.blocks_bitflipped = 0
        self.blocks_torn = 0
        self.blocks_orphaned = 0
        self.blocks_silent = 0
        self._procs: Dict[int, List["Process"]] = {}
        self._armed = False
        if plan.silent_error_rate > 0.0:
            fs.corrupt_hook = self._silent_corrupt

    # -- lifecycle --------------------------------------------------------
    def arm(self) -> None:
        """Schedule every timeline event on the simulation calendar.

        Idempotent per injector; transports call this once the run
        starts so ``time`` in the plan is relative to output start.
        """
        if self._armed:
            return
        self._armed = True
        for ev in self.timeline:
            self.env.schedule_callback(
                ev.time, lambda _ev=ev: self._apply(_ev)
            )

    def register(self, rank: int, proc: "Process") -> None:
        """Associate a process with a rank for ``crash_rank`` faults."""
        if rank in self.crashed_ranks:
            proc.kill(f"rank {rank} already crashed")
            return
        self._procs.setdefault(rank, []).append(proc)

    # -- message perturbation (consulted by SimComm) ----------------------
    def perturb_send(self, source: int, dest: int) -> Optional[float]:
        """Extra latency for a message, or None to drop it.

        Messages from or to a crashed rank are always dropped — a dead
        process neither sends nor receives.
        """
        if source in self.crashed_ranks or dest in self.crashed_ranks:
            self.messages_dropped += 1
            return None
        if self.msg_loss_p > 0.0:
            if float(self._msg_rng.random()) < self.msg_loss_p:
                self.messages_dropped += 1
                return None
        return self.msg_delay_extra

    # -- injection --------------------------------------------------------
    def _trace(self, name: str, ev: FaultEvent) -> None:
        tr = self.env.tracer
        if tr is not None and tr.enabled:
            tr.instant(
                name,
                cat="fault",
                pid="faults",
                tid=ev.kind,
                args={
                    "kind": ev.kind,
                    "target": ev.target,
                    "factor": float(ev.factor),
                },
            )

    def _apply(self, ev: FaultEvent) -> None:
        pool = self.fs.pool
        self.injected.append((self.env.now, ev))
        self._trace("fault.inject" if ev.kind != "ost_recover"
                    else "fault.recover", ev)
        if ev.kind == "ost_fail":
            lost = pool.fail_ost(ev.target)
            # In-flight transfers error out; waiters see OstFailedError.
            undelivered = self.fs.fabric.fail_sink(ev.target)
            tr = self.env.tracer
            if tr is not None and tr.enabled:
                tr.instant(
                    "ost.failstop", cat="fault", pid=f"ost/{ev.target}",
                    tid="state",
                    args={"cache_lost": lost, "undelivered": undelivered},
                )
        elif ev.kind == "ost_hang":
            pool.hang_ost(ev.target)
        elif ev.kind == "ost_brownout":
            pool.brownout_ost(ev.target, ev.factor)
        elif ev.kind == "ost_recover":
            pool.recover_ost(ev.target)
        elif ev.kind == "crash_rank":
            self.crashed_ranks.add(ev.target)
            for proc in self._procs.get(ev.target, ()):  # registered roles
                if proc.is_alive:
                    proc.kill(f"rank {ev.target} crashed")
        elif ev.kind == "msg_loss":
            self.msg_loss_p = float(ev.factor)
        elif ev.kind == "msg_delay":
            self.msg_delay_extra = float(ev.factor)
        elif ev.kind in CORRUPTION_KINDS:
            self._apply_corruption(ev)
        if ev.duration is not None and ev.kind != "ost_recover":
            self.env.schedule_callback(
                ev.duration, lambda _ev=ev: self._revert(_ev)
            )

    def _revert(self, ev: FaultEvent) -> None:
        pool = self.fs.pool
        self._trace("fault.recover", ev)
        if ev.kind in ("ost_fail", "ost_hang", "ost_brownout"):
            pool.recover_ost(ev.target)
        elif ev.kind == "msg_loss":
            self.msg_loss_p = 0.0
        elif ev.kind == "msg_delay":
            self.msg_delay_extra = 0.0
        # crash_rank has no revert: dead processes stay dead.

    # -- silent corruption -------------------------------------------------
    def _ledger(self, f: "SimFile", blk: "StoredBlock", kind: str) -> None:
        self.corruption_ledger.append({
            "path": f.path,
            "offset": float(blk.offset),
            "nbytes": float(blk.nbytes),
            "writer": blk.writer,
            "kind": kind,
            "time": float(self.env.now),
        })

    def _bitflip(self, blk: "StoredBlock") -> None:
        blk.corrupt = True
        if blk.checksum is not None:
            blk.checksum ^= _CKSUM_FLIP

    def _target_blocks(self, target: int) -> List[Tuple["SimFile", "StoredBlock"]]:
        """Healthy stored blocks touching OST ``target``, newest first.

        Corruption hits recently written data — the bytes still moving
        through caches and firmware — so candidates are ordered by
        store recency.
        """
        out: List[Tuple["SimFile", "StoredBlock"]] = []
        for path in self.fs.listdir():
            f = self.fs.lookup(path)
            for blk in f.stored_blocks():
                if blk.corrupt or blk.torn:
                    continue
                if any(
                    ost == target
                    for ost, _b in f.layout.span_list(blk.offset, blk.nbytes)
                ):
                    out.append((f, blk))
        out.sort(key=lambda pair: -pair[1].seq)
        return out

    def _apply_corruption(self, ev: FaultEvent) -> None:
        """Mutate stored blocks on one OST in place.

        A fail-stopped target holds nothing corruptible — its cached
        bytes are already *lost* (PR 3 semantics), which is a stronger
        statement than corruption — so the event degenerates to a
        no-op there.  Hung/browned-out targets still hold their data
        and stay eligible.
        """
        if self.fs.pool.state[ev.target] == OstState.FAILED:
            return
        candidates = self._target_blocks(ev.target)
        if not candidates:
            return
        if ev.kind == "torn_write":
            f, blk = candidates[0]
            blk.valid_bytes = blk.nbytes * (1.0 - float(ev.factor))
            blk.corrupt = True
            self.blocks_torn += 1
            self._ledger(f, blk, "torn_write")
            return
        n = max(1, int(ev.factor))
        for f, blk in candidates[:n]:
            if ev.kind == "block_bitflip":
                self._bitflip(blk)
                self.blocks_bitflipped += 1
                self._ledger(f, blk, "block_bitflip")
            else:  # stale_index: the stored block vanishes, entry stays
                self._ledger(f, blk, "stale_index")
                del f.blocks[(blk.offset, blk.nbytes)]
                self.blocks_orphaned += 1

    def _silent_corrupt(
        self, f: "SimFile", stored: List["StoredBlock"]
    ) -> None:
        """The ``corrupt_hook``: seeded bit rot underneath every write."""
        rate = self.plan.silent_error_rate
        for blk in stored:
            if float(self._corrupt_rng.random()) < rate:
                self._bitflip(blk)
                self.blocks_silent += 1
                self._ledger(f, blk, "silent")
                tr = self.env.tracer
                if tr is not None and tr.enabled:
                    tr.instant(
                        "fault.silent_corrupt", cat="fault", pid="faults",
                        tid="silent",
                        args={"path": f.path, "offset": float(blk.offset)},
                    )

    # -- accounting -------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        return {
            "n_injected": float(len(self.injected)),
            "n_crashed_ranks": float(len(self.crashed_ranks)),
            "messages_dropped": float(self.messages_dropped),
            "bytes_lost_cache": float(self.fs.pool.bytes_lost.sum()),
            "blocks_bitflipped": float(self.blocks_bitflipped),
            "blocks_torn": float(self.blocks_torn),
            "blocks_orphaned": float(self.blocks_orphaned),
            "blocks_silent": float(self.blocks_silent),
        }
