"""The live fault injector bound to one machine build.

Turns a materialized :class:`~repro.faults.plan.FaultPlan` timeline
into simulation-calendar callbacks that drive the storage pool's fault
state, error in-flight fabric flows, kill registered rank processes,
and perturb control messages.  Everything is deterministic: the
timeline is fixed at arm time and message-loss draws come from a
dedicated RNG stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.lustre.filesystem import FileSystem
    from repro.sim.engine import Environment
    from repro.sim.process import Process

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a fault timeline to a live machine.

    Parameters
    ----------
    env, fs:
        The machine's environment and file system (the pool and fabric
        are reached through ``fs``).
    plan:
        The declarative plan; its stochastic part is expanded here.
    rngs:
        The machine's :class:`~repro.sim.rng.RngRegistry`; the
        ``"faults"`` stream materializes the timeline and
        ``"faults.msg"`` draws message-loss coin flips.
    n_ranks:
        Communicator size, for crash-target validation.
    """

    def __init__(
        self,
        env: "Environment",
        fs: "FileSystem",
        plan: FaultPlan,
        rngs,
        n_ranks: int,
    ):
        self.env = env
        self.fs = fs
        self.plan = plan
        self.policy = plan.policy
        self.timeline: Tuple[FaultEvent, ...] = plan.materialize(
            rngs.get("faults"), fs.pool.n_sinks, n_ranks
        )
        self._msg_rng = rngs.get("faults.msg")
        self.crashed_ranks: Set[int] = set()
        self.injected: List[Tuple[float, FaultEvent]] = []
        self.msg_loss_p = 0.0
        self.msg_delay_extra = 0.0
        self.messages_dropped = 0
        self._procs: Dict[int, List["Process"]] = {}
        self._armed = False

    # -- lifecycle --------------------------------------------------------
    def arm(self) -> None:
        """Schedule every timeline event on the simulation calendar.

        Idempotent per injector; transports call this once the run
        starts so ``time`` in the plan is relative to output start.
        """
        if self._armed:
            return
        self._armed = True
        for ev in self.timeline:
            self.env.schedule_callback(
                ev.time, lambda _ev=ev: self._apply(_ev)
            )

    def register(self, rank: int, proc: "Process") -> None:
        """Associate a process with a rank for ``crash_rank`` faults."""
        if rank in self.crashed_ranks:
            proc.kill(f"rank {rank} already crashed")
            return
        self._procs.setdefault(rank, []).append(proc)

    # -- message perturbation (consulted by SimComm) ----------------------
    def perturb_send(self, source: int, dest: int) -> Optional[float]:
        """Extra latency for a message, or None to drop it.

        Messages from or to a crashed rank are always dropped — a dead
        process neither sends nor receives.
        """
        if source in self.crashed_ranks or dest in self.crashed_ranks:
            self.messages_dropped += 1
            return None
        if self.msg_loss_p > 0.0:
            if float(self._msg_rng.random()) < self.msg_loss_p:
                self.messages_dropped += 1
                return None
        return self.msg_delay_extra

    # -- injection --------------------------------------------------------
    def _trace(self, name: str, ev: FaultEvent) -> None:
        tr = self.env.tracer
        if tr is not None and tr.enabled:
            tr.instant(
                name,
                cat="fault",
                pid="faults",
                tid=ev.kind,
                args={
                    "kind": ev.kind,
                    "target": ev.target,
                    "factor": float(ev.factor),
                },
            )

    def _apply(self, ev: FaultEvent) -> None:
        pool = self.fs.pool
        self.injected.append((self.env.now, ev))
        self._trace("fault.inject" if ev.kind != "ost_recover"
                    else "fault.recover", ev)
        if ev.kind == "ost_fail":
            lost = pool.fail_ost(ev.target)
            # In-flight transfers error out; waiters see OstFailedError.
            undelivered = self.fs.fabric.fail_sink(ev.target)
            tr = self.env.tracer
            if tr is not None and tr.enabled:
                tr.instant(
                    "ost.failstop", cat="fault", pid=f"ost/{ev.target}",
                    tid="state",
                    args={"cache_lost": lost, "undelivered": undelivered},
                )
        elif ev.kind == "ost_hang":
            pool.hang_ost(ev.target)
        elif ev.kind == "ost_brownout":
            pool.brownout_ost(ev.target, ev.factor)
        elif ev.kind == "ost_recover":
            pool.recover_ost(ev.target)
        elif ev.kind == "crash_rank":
            self.crashed_ranks.add(ev.target)
            for proc in self._procs.get(ev.target, ()):  # registered roles
                if proc.is_alive:
                    proc.kill(f"rank {ev.target} crashed")
        elif ev.kind == "msg_loss":
            self.msg_loss_p = float(ev.factor)
        elif ev.kind == "msg_delay":
            self.msg_delay_extra = float(ev.factor)
        if ev.duration is not None and ev.kind != "ost_recover":
            self.env.schedule_callback(
                ev.duration, lambda _ev=ev: self._revert(_ev)
            )

    def _revert(self, ev: FaultEvent) -> None:
        pool = self.fs.pool
        self._trace("fault.recover", ev)
        if ev.kind in ("ost_fail", "ost_hang", "ost_brownout"):
            pool.recover_ost(ev.target)
        elif ev.kind == "msg_loss":
            self.msg_loss_p = 0.0
        elif ev.kind == "msg_delay":
            self.msg_delay_extra = 0.0
        # crash_rank has no revert: dead processes stay dead.

    # -- accounting -------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        return {
            "n_injected": float(len(self.injected)),
            "n_crashed_ranks": float(len(self.crashed_ranks)),
            "messages_dropped": float(self.messages_dropped),
            "bytes_lost_cache": float(self.fs.pool.bytes_lost.sum()),
        }
