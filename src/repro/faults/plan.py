"""Declarative, seeded fault plans.

A :class:`FaultPlan` is data, not behaviour: a timeline of
:class:`FaultEvent` records (plus an optional stochastic failure model)
and the :class:`RetryPolicy` constants the fault-tolerant transports
use.  Plans are JSON-serializable so experiments can be driven with
``--faults plan.json`` / ``REPRO_FAULTS`` and replayed bit-identically:
the stochastic model draws from a named :mod:`repro.sim.rng` stream, so
the same seed always yields the same timeline.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.errors import FaultPlanError

__all__ = [
    "FAULT_KINDS",
    "CORRUPTION_KINDS",
    "FaultEvent",
    "RetryPolicy",
    "FaultPlan",
    "two_ost_failure_plan",
]

#: Recognized fault kinds and what ``target`` means for each.
FAULT_KINDS = (
    "ost_fail",  # target = OST index: fail-stop, cached bytes lost
    "ost_hang",  # target = OST index: accepted-but-never-completed
    "ost_brownout",  # target = OST index, factor = drain scaling
    "ost_recover",  # target = OST index: back to UP
    "crash_rank",  # target = rank: kill its processes (writer or SC)
    "msg_loss",  # factor = drop probability for control messages
    "msg_delay",  # factor = extra latency (seconds) per message
    "block_bitflip",  # target = OST index, factor = blocks to rot
    "torn_write",  # target = OST index, factor = fraction of tail lost
    "stale_index",  # target = OST index, factor = blocks to orphan
)

_OST_KINDS = ("ost_fail", "ost_hang", "ost_brownout", "ost_recover")

#: Silent-corruption kinds: they mutate stored blocks in place (no
#: state-machine transition, nothing reverts).  ``block_bitflip`` rots
#: the stored copy of recent blocks so their read-back checksum no
#: longer matches the index; ``torn_write`` truncates a block to a
#: prefix; ``stale_index`` drops a stored block while its index entry
#: survives (the index points at data that never made it).
CORRUPTION_KINDS = ("block_bitflip", "torn_write", "stale_index")
_CORRUPTION_KINDS = CORRUPTION_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One point on the fault timeline.

    ``duration`` (where meaningful) schedules the matching recovery
    automatically: an ``ost_hang``/``ost_brownout``/``msg_*`` with a
    duration reverts after the window.  ``ost_fail`` is permanent
    unless an explicit ``ost_recover`` follows — a fail-stopped target
    comes back empty, which the storage layer models, but the paper's
    write-once workloads never re-use it within a run.
    """

    time: float
    kind: str
    target: int = -1
    factor: float = 1.0
    duration: Optional[float] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.time < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.time}")
        if self.duration is not None and self.duration <= 0:
            raise FaultPlanError("fault duration must be positive")
        if self.kind == "ost_brownout" and not 0.0 < self.factor <= 1.0:
            raise FaultPlanError(
                f"brownout factor must be in (0, 1], got {self.factor}"
            )
        if self.kind == "msg_loss" and not 0.0 <= self.factor < 1.0:
            raise FaultPlanError(
                f"msg_loss probability must be in [0, 1), got {self.factor}"
            )
        if self.kind == "msg_delay" and self.factor < 0:
            raise FaultPlanError("msg_delay extra latency must be >= 0")
        if self.kind in _CORRUPTION_KINDS and self.duration is not None:
            raise FaultPlanError(
                f"{self.kind} takes no duration: corruption does not revert"
            )
        if self.kind in ("block_bitflip", "stale_index") and self.factor < 1:
            raise FaultPlanError(
                f"{self.kind} factor is a block count, must be >= 1, got "
                f"{self.factor}"
            )
        if self.kind == "torn_write" and not 0.0 < self.factor <= 1.0:
            raise FaultPlanError(
                f"torn_write factor is the fraction of the block's tail "
                f"lost, must be in (0, 1], got {self.factor}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Constants of the fault-tolerant write path.

    ``write_timeout`` is the per-attempt deadline a writer arms around
    each write (the hung-target detector); retries back off
    exponentially from ``backoff_base`` capped at ``backoff_cap``.
    ``heartbeat_interval``/``sc_timeout`` drive sub-coordinator death
    detection at the coordinator; ``run_timeout`` is the whole-output
    backstop after which survivors are reaped and the run accounted;
    ``flush_timeout`` bounds the durability wait per file.

    ``read_back_verify`` arms the adaptive transport's
    write–verify–rewrite loop: after each write the writer checks the
    stored blocks against its own checksums and treats a mismatch like
    a failed attempt (same retry/backoff budget, same poisoning and
    relocation once the budget is exhausted).  Off by default so
    checksum-free runs reproduce the PR 3 fault behaviour exactly.
    """

    write_timeout: float = 15.0
    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_cap: float = 4.0
    heartbeat_interval: float = 2.0
    sc_timeout: float = 20.0
    run_timeout: float = 900.0
    flush_timeout: float = 300.0
    read_back_verify: bool = False

    def __post_init__(self):
        if self.write_timeout <= 0:
            raise FaultPlanError("write_timeout must be positive")
        if self.max_retries < 0:
            raise FaultPlanError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise FaultPlanError(
                "need 0 <= backoff_base <= backoff_cap"
            )
        if self.heartbeat_interval <= 0 or self.sc_timeout <= 0:
            raise FaultPlanError("heartbeat constants must be positive")
        if self.run_timeout <= 0 or self.flush_timeout <= 0:
            raise FaultPlanError("run/flush timeouts must be positive")

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        return min(
            self.backoff_base * (2.0 ** max(attempt - 1, 0)),
            self.backoff_cap,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A timeline of faults plus the retry policy, as pure data.

    ``mtbf`` switches on the stochastic model: inter-failure gaps are
    exponential with that mean, targets drawn uniformly over the pool,
    up to ``max_stochastic`` events of kind ``stochastic_kind``.
    ``mttr`` (optional) schedules an exponential-mean recovery after
    each stochastic fault.  Draws come from the run's ``"faults"``
    RNG stream at :meth:`materialize` time — deterministic per seed.

    ``silent_error_rate`` is the per-block probability that a freshly
    written block silently rots in place (undetectable at write time;
    seeded from the ``"faults.corrupt"`` stream).  It models media bit
    rot / firmware bugs underneath *every* write, independent of the
    declarative timeline.
    """

    events: Tuple[FaultEvent, ...] = ()
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    mtbf: Optional[float] = None
    mttr: Optional[float] = None
    stochastic_kind: str = "ost_fail"
    max_stochastic: int = 0
    silent_error_rate: float = 0.0

    def __post_init__(self):
        if self.mtbf is not None and self.mtbf <= 0:
            raise FaultPlanError("mtbf must be positive")
        if self.mttr is not None and self.mttr <= 0:
            raise FaultPlanError("mttr must be positive")
        if not 0.0 <= self.silent_error_rate < 1.0:
            raise FaultPlanError(
                f"silent_error_rate must be in [0, 1), got "
                f"{self.silent_error_rate}"
            )
        if self.stochastic_kind not in _OST_KINDS[:3]:
            raise FaultPlanError(
                f"stochastic_kind must be an injectable OST fault, got "
                f"{self.stochastic_kind!r}"
            )
        if self.max_stochastic < 0:
            raise FaultPlanError("max_stochastic must be >= 0")
        if self.mtbf is not None and self.max_stochastic == 0:
            raise FaultPlanError(
                "stochastic model needs max_stochastic >= 1"
            )
        # Normalize: events sorted by time (stable on input order).
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.time))
        )

    # -- (de)serialization ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "events": [asdict(e) for e in self.events],
            "policy": asdict(self.policy),
            "mtbf": self.mtbf,
            "mttr": self.mttr,
            "stochastic_kind": self.stochastic_kind,
            "max_stochastic": self.max_stochastic,
            "silent_error_rate": self.silent_error_rate,
        }

    @staticmethod
    def from_dict(d: dict) -> "FaultPlan":
        if not isinstance(d, dict):
            raise FaultPlanError(f"fault plan must be an object, got {d!r}")
        unknown = set(d) - {
            "events", "policy", "mtbf", "mttr", "stochastic_kind",
            "max_stochastic", "silent_error_rate",
        }
        if unknown:
            raise FaultPlanError(f"unknown fault-plan keys {sorted(unknown)}")
        events = []
        for i, e in enumerate(d.get("events", ())):
            if not isinstance(e, dict):
                raise FaultPlanError(
                    f"events[{i}] must be an object, got {e!r}"
                )
            kind = e.get("kind")
            if kind not in FAULT_KINDS:
                raise FaultPlanError(
                    f"events[{i}]: unknown fault kind {kind!r}; expected "
                    f"one of {FAULT_KINDS}"
                )
            bad_keys = set(e) - {"time", "kind", "target", "factor",
                                 "duration"}
            if bad_keys:
                raise FaultPlanError(
                    f"events[{i}] ({kind}): unknown keys {sorted(bad_keys)}"
                )
            events.append(FaultEvent(**e))
        try:
            policy = RetryPolicy(**d.get("policy", {}))
        except TypeError as exc:
            raise FaultPlanError(str(exc)) from None
        return FaultPlan(
            events=tuple(events),
            policy=policy,
            mtbf=d.get("mtbf"),
            mttr=d.get("mttr"),
            stochastic_kind=d.get("stochastic_kind", "ost_fail"),
            max_stochastic=d.get("max_stochastic", 0),
            silent_error_rate=d.get("silent_error_rate", 0.0),
        )

    @staticmethod
    def from_json(path: str) -> "FaultPlan":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultPlanError(f"cannot load fault plan {path}: {exc}")
        return FaultPlan.from_dict(data)

    def save_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    def with_policy(self, **kwargs) -> "FaultPlan":
        return replace(self, policy=replace(self.policy, **kwargs))

    # -- timeline expansion ----------------------------------------------
    def materialize(
        self, rng, n_osts: int, n_ranks: int
    ) -> Tuple[FaultEvent, ...]:
        """Validate targets and expand the stochastic model.

        ``rng`` is a numpy Generator (the run's ``"faults"`` stream);
        it is only consumed when the stochastic model is enabled, so
        purely declarative plans never perturb other streams.
        """
        timeline = list(self.events)
        for e in timeline:
            if (
                e.kind in _CORRUPTION_KINDS
                and not 0 <= e.target < n_osts
            ):
                raise FaultPlanError(
                    f"{e.kind} target {e.target} out of range for "
                    f"{n_osts} OSTs"
                )
            if e.kind in _OST_KINDS and not 0 <= e.target < n_osts:
                raise FaultPlanError(
                    f"{e.kind} target {e.target} out of range for "
                    f"{n_osts} OSTs"
                )
            if e.kind == "crash_rank" and not 0 <= e.target < n_ranks:
                raise FaultPlanError(
                    f"crash_rank target {e.target} out of range for "
                    f"{n_ranks} ranks"
                )
        if self.mtbf is not None:
            t = 0.0
            for _ in range(self.max_stochastic):
                t += float(rng.exponential(self.mtbf))
                target = int(rng.integers(0, n_osts))
                duration = (
                    float(rng.exponential(self.mttr))
                    if self.mttr is not None
                    else None
                )
                timeline.append(
                    FaultEvent(
                        time=t,
                        kind=self.stochastic_kind,
                        target=target,
                        factor=(
                            0.25 if self.stochastic_kind == "ost_brownout"
                            else 1.0
                        ),
                        duration=duration,
                    )
                )
        timeline.sort(key=lambda e: e.time)
        return tuple(timeline)


def two_ost_failure_plan(
    osts: Sequence[int] = (0, 1), at: float = 0.5, **policy
) -> FaultPlan:
    """The README's quick-start: fail-stop two targets mid-write."""
    return FaultPlan(
        events=tuple(
            FaultEvent(time=at, kind="ost_fail", target=int(o)) for o in osts
        ),
        policy=RetryPolicy(**policy),
    )
