"""Deterministic fault injection.

Failure is a first-class simulated phenomenon: a
:class:`~repro.faults.plan.FaultPlan` (pure data, JSON-serializable)
describes *what* goes wrong and when — OST fail-stop, hang, brownout,
rank crashes, message loss/delay, or a seeded stochastic MTBF/MTTR
model — and a :class:`~repro.faults.injector.FaultInjector` applies it
to one machine build.  Transports consult ``machine.faults`` to decide
whether to run their hardened (timeout/retry/failover) paths; with no
plan installed, behaviour is bit-identical to a fault-free build.

Plans reach machine builds three ways, mirroring the tracer:
explicitly (``MachineSpec.build(..., faults=plan)``), through the
process-wide registry (:func:`with_faults` /
:func:`set_active_fault_plan`), or via the ``REPRO_FAULTS`` environment
variable naming a plan JSON file.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CORRUPTION_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    two_ost_failure_plan,
)

__all__ = [
    "CORRUPTION_KINDS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "get_active_fault_plan",
    "resolve_fault_plan",
    "set_active_fault_plan",
    "two_ost_failure_plan",
    "with_faults",
]

# -- active-plan registry --------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None


def set_active_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with None) the process-wide active fault plan."""
    global _ACTIVE
    _ACTIVE = plan


def get_active_fault_plan() -> Optional[FaultPlan]:
    """The plan newly built machines pick up, if any."""
    return _ACTIVE


@contextmanager
def with_faults(plan: FaultPlan):
    """Scope in which every machine built picks up *plan*."""
    previous = get_active_fault_plan()
    set_active_fault_plan(plan)
    try:
        yield plan
    finally:
        set_active_fault_plan(previous)


def resolve_fault_plan(
    explicit: Optional[FaultPlan] = None,
) -> Optional[FaultPlan]:
    """Resolution order: explicit arg > active registry > REPRO_FAULTS."""
    if explicit is not None:
        return explicit
    active = get_active_fault_plan()
    if active is not None:
        return active
    path = os.environ.get("REPRO_FAULTS")
    if path:
        return FaultPlan.from_json(path)
    return None
