"""Supervised, checkpointed worker pool for sweep jobs.

The scheduler that subsumes the one-shot ``ProcessPoolExecutor`` in
:mod:`repro.harness.parallel`: jobs (see :mod:`repro.service.job`) are
dispatched to a pool of worker-process *shards* connected by dedicated
pipes, and the parent supervises them —

* **checkpointing**: every completed job is appended to the sweep's
  :class:`~repro.service.journal.Journal` (JSON-lines + fsync) the
  moment its result arrives, so an interrupted sweep resumes from the
  journal instead of starting over;
* **dead-worker detection + adoption**: a worker that crashes (OOM,
  SIGKILL, segfault) closes its pipe; the parent notices, re-queues
  the in-flight job for a surviving shard (an *adoption*), and spawns
  a replacement worker within a respawn budget;
* **timeouts**: a per-job wall-clock deadline kills the hung worker
  and re-queues the job the same way;
* **retries**: re-queued jobs back off exponentially via the fault
  subsystem's :class:`~repro.faults.RetryPolicy` (``max_retries``,
  ``backoff``) — crash loops are bounded, not infinite;
* **degraded serial fallback**: if every worker is dead and the
  respawn budget is spent, the remaining jobs run inline in the
  parent, still checkpointing — a sweep degrades, it does not die;
* **determinism**: each job carries its pre-derived seed and results
  are collated in submission order, so a resumed, retried, adopted,
  or degraded sweep is **bit-identical** to an uninterrupted serial
  run.  Restored results are the pickled originals.

A job that *raises* (as opposed to killing its worker) is treated as
deterministic — the simulator is seeded, so the retry would fail the
same way — and fails the batch immediately with a
:class:`~repro.errors.JobFailure` naming the cell, the sample seed,
and a ready-to-paste reproduction one-liner.  Pass
``retry_errors=True`` for workloads where exceptions are transient.

Scheduler counters land in the active telemetry registry when one is
collecting: ``sched.jobs_done``, ``sched.jobs_restored``,
``sched.retries``, ``sched.adoptions``, ``sched.timeouts``,
``sched.respawns``, ``sched.checkpoint_bytes``, ``sched.queue_depth``.
"""

from __future__ import annotations

import base64
import heapq
import os
import pickle
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, JobFailure
from repro.service.job import JobSpec, repro_command
from repro.service.journal import Journal, decode_result, encode_result

__all__ = [
    "Scheduler",
    "SchedulerStats",
    "get_progress_hook",
    "set_progress_hook",
]

# Process-wide progress hook (the serve daemon installs one so nested
# run_samples batches report into its status file).  Mirrors the
# active-tracer pattern: consulted at scheduler construction.
_progress_hook: Optional[Callable[["SchedulerStats"], None]] = None


def set_progress_hook(
    fn: Optional[Callable[["SchedulerStats"], None]]
) -> None:
    global _progress_hook
    _progress_hook = fn


def get_progress_hook() -> Optional[Callable[["SchedulerStats"], None]]:
    return _progress_hook


@dataclass
class SchedulerStats:
    """Observable outcome of one :meth:`Scheduler.run` batch."""

    jobs: int = 0
    done: int = 0
    failed: int = 0
    restored: int = 0
    retries: int = 0
    adoptions: int = 0
    timeouts: int = 0
    respawns: int = 0
    checkpoint_bytes: int = 0
    serial_fallback: bool = False
    label: str = ""

    def merge(self, other: "SchedulerStats") -> None:
        for f in (
            "jobs", "done", "failed", "restored", "retries",
            "adoptions", "timeouts", "respawns", "checkpoint_bytes",
        ):
            setattr(self, f, getattr(self, f) + getattr(other, f))
        self.serial_fallback = self.serial_fallback or other.serial_fallback


def _execute(fn: Callable, arg: Any, want_trace: bool, want_metrics: bool):
    """Run one job under isolated instrumentation.

    Returns ``(result, events, metrics)``: the tracer's event buffer
    and a registry snapshot when that instrumentation is requested,
    else ``None``.  Always overrides any inherited process-wide tracer
    or registry (a fork-started worker may carry the parent's, whose
    recordings would land in a lost copy).
    """
    from repro.telemetry import MetricsRegistry, collecting
    from repro.telemetry.registry import set_active_registry
    from repro.trace import Tracer, tracing
    from repro.trace.tracer import set_active_tracer

    if want_metrics:
        reg = MetricsRegistry()
        ctx = collecting(reg)
    else:
        reg = None
        set_active_registry(None)
        ctx = None
    if want_trace:
        t = Tracer()
        with tracing(t):
            if ctx is not None:
                with ctx:
                    result = fn(arg)
            else:
                result = fn(arg)
        return result, t.events, reg.snapshot() if reg else None
    set_active_tracer(None)
    if ctx is not None:
        with ctx:
            result = fn(arg)
    else:
        result = fn(arg)
    return result, None, reg.snapshot() if reg else None


def _worker_main(conn, want_trace: bool, want_metrics: bool) -> None:
    """Shard main loop: recv ``(job_id, fn, arg)``, send the outcome.

    SIGINT is ignored so a ctrl-C lands in the parent only — the
    parent shuts shards down (or a later resume re-adopts the work).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        job_id, fn, arg = msg
        try:
            result, events, metrics = _execute(
                fn, arg, want_trace, want_metrics
            )
        except BaseException as exc:
            try:
                exc_bytes: Optional[bytes] = pickle.dumps(exc)
            except Exception:
                exc_bytes = None
            payload = (
                "err", job_id, f"{type(exc).__name__}: {exc}",
                traceback.format_exc(), exc_bytes,
            )
            try:
                conn.send(payload)
            except Exception:
                return
            continue
        try:
            conn.send(("ok", job_id, result, events, metrics))
        except Exception as exc:
            try:
                conn.send((
                    "err", job_id,
                    f"result of {job_id} is not sendable: {exc}", "", None,
                ))
            except Exception:
                return


class _Shard:
    """Parent-side handle of one worker process."""

    __slots__ = ("proc", "conn", "spec", "attempt", "deadline", "started")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.spec: Optional[JobSpec] = None
        self.attempt = 0
        self.deadline: Optional[float] = None
        self.started: Optional[float] = None


@dataclass
class _Pending:
    """A job waiting to run (possibly after a retry backoff)."""

    ready_at: float
    seq: int
    spec: JobSpec = field(compare=False)
    attempt: int = field(default=0, compare=False)

    def __lt__(self, other):
        return (self.ready_at, self.seq) < (other.ready_at, other.seq)


class Scheduler:
    """Run batches of :class:`JobSpec` with supervision + checkpoints.

    ``n_workers <= 1`` runs jobs inline (no processes) but still
    checkpoints and resumes; ``job_timeout`` is the per-job wall-clock
    budget in seconds (``None`` = unbounded); ``policy`` supplies the
    retry count and backoff curve (defaults to the fault subsystem's
    :class:`~repro.faults.RetryPolicy`); ``max_respawns`` bounds
    replacement workers per batch (default ``2 * n_workers``);
    ``progress`` is an optional callback invoked with the live
    :class:`SchedulerStats` after every state change.
    """

    def __init__(
        self,
        n_workers: int = 1,
        policy=None,
        job_timeout: Optional[float] = None,
        journal: Optional[Journal] = None,
        retry_errors: bool = False,
        max_respawns: Optional[int] = None,
        fail_fast: bool = True,
        progress: Optional[Callable[[SchedulerStats], None]] = None,
    ):
        if policy is None:
            from repro.faults import RetryPolicy

            policy = RetryPolicy()
        self.n_workers = max(1, int(n_workers))
        self.policy = policy
        self.job_timeout = job_timeout
        self.journal = journal
        self.retry_errors = retry_errors
        self.max_respawns = (
            2 * self.n_workers if max_respawns is None else max_respawns
        )
        self.fail_fast = fail_fast
        self.progress = progress
        self.stats = SchedulerStats()
        self._metrics_bound = False
        self._m: Dict[str, Any] = {}
        # Adoption events per job id, folded into the job's eventual
        # "done" journal record so status/partial views can attribute
        # worker deaths to cells.
        self._adopted_jobs: Dict[str, int] = {}

    # -- telemetry ---------------------------------------------------------
    def _bind_metrics(self) -> None:
        from repro.telemetry.registry import get_active_registry

        reg = get_active_registry()
        if reg is None or not reg.enabled:
            self._m = {}
            return
        self._m = {
            "done": reg.counter("sched.jobs_done"),
            "restored": reg.counter("sched.jobs_restored"),
            "retries": reg.counter("sched.retries"),
            "adoptions": reg.counter("sched.adoptions"),
            "timeouts": reg.counter("sched.timeouts"),
            "respawns": reg.counter("sched.respawns"),
            "checkpoint_bytes": reg.counter("sched.checkpoint_bytes"),
            "queue_depth": reg.gauge("sched.queue_depth"),
        }

    def _count(self, name: str, n: float = 1.0) -> None:
        inst = self._m.get(name)
        if inst is not None:
            inst.inc(n)

    def _notify(self) -> None:
        if self.progress is not None:
            self.progress(self.stats)

    # -- journal helpers ---------------------------------------------------
    def _checkpoint(self, spec: JobSpec, attempt: int, result,
                    events, metrics, elapsed: float) -> None:
        if self.journal is None:
            return
        rec = {
            "kind": "done",
            "job": spec.job_id,
            "label": spec.label,
            "seed": spec.sample_seed,
            "attempt": attempt,
            "elapsed": round(elapsed, 6),
            "result": encode_result(result),
        }
        adopted = self._adopted_jobs.get(spec.job_id, 0)
        if adopted:
            rec["adopted"] = adopted
        if events is not None:
            rec["events"] = base64.b64encode(
                pickle.dumps(events)
            ).decode("ascii")
        if metrics is not None:
            rec["metrics"] = base64.b64encode(
                pickle.dumps(metrics)
            ).decode("ascii")
        n = self.journal.append(rec)
        self.stats.checkpoint_bytes += n
        self._count("checkpoint_bytes", n)

    def _journal_failure(self, spec: JobSpec, error: str) -> None:
        if self.journal is None:
            return
        n = self.journal.append({
            "kind": "failed",
            "job": spec.job_id,
            "label": spec.label,
            "seed": spec.sample_seed,
            "error": error[:2000],
        })
        self.stats.checkpoint_bytes += n
        self._count("checkpoint_bytes", n)

    def _restore(self, spec: JobSpec):
        """``(result, events, metrics)`` from the journal, or None."""
        if self.journal is None:
            return None
        rec = self.journal.done.get(spec.job_id)
        if rec is None or "result" not in rec:
            return None
        result = decode_result(rec["result"])
        events = metrics = None
        if "events" in rec:
            events = pickle.loads(base64.b64decode(rec["events"]))
        if "metrics" in rec:
            metrics = pickle.loads(base64.b64decode(rec["metrics"]))
        return result, events, metrics

    # -- failure construction ---------------------------------------------
    def _failure(self, spec: JobSpec, reason: str, error_text: str = "",
                 cause: Optional[BaseException] = None) -> JobFailure:
        seed = spec.sample_seed
        cmd = repro_command(spec.fn, spec.arg)
        msg = f"job {spec.label!r}"
        if seed is not None:
            msg += f" (sample_seed={seed})"
        msg += f" {reason}"
        if error_text:
            msg += f": {error_text.strip().splitlines()[-1]}"
        if cmd:
            msg += f"\n  reproduce with: {cmd}"
        failure = JobFailure(
            msg, label=spec.label, sample_seed=seed, job_id=spec.job_id,
            repro_command=cmd, error_text=error_text,
        )
        if cause is not None:
            failure.__cause__ = cause
        return failure

    # -- main entry --------------------------------------------------------
    def run(self, jobs: Sequence[JobSpec], label: str = "") -> List[Any]:
        """Execute *jobs*; returns results in submission order.

        Raises the first :class:`~repro.errors.JobFailure` once the
        batch has wound down (immediately stopping new dispatch when
        ``fail_fast``, the default).
        """
        jobs = list(jobs)
        ids = [j.job_id for j in jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate job ids in batch")
        self._bind_metrics()
        self.stats = SchedulerStats(jobs=len(jobs), label=label)
        known = set(ids)
        for j in jobs:
            for dep in j.deps:
                if dep not in known and (
                    self.journal is None or dep not in self.journal.done
                ):
                    raise ConfigurationError(
                        f"job {j.label!r} depends on unknown job {dep!r}"
                    )

        from repro.telemetry.registry import get_active_registry
        from repro.trace.tracer import get_active_tracer

        tracer = get_active_tracer()
        want_trace = tracer is not None and tracer.enabled
        registry = get_active_registry()
        want_metrics = registry is not None and registry.enabled

        results: Dict[str, Any] = {}
        aux: Dict[str, tuple] = {}
        failures: List[JobFailure] = []

        if self.journal is not None and jobs:
            n = self.journal.append({
                "kind": "plan",
                "label": label or jobs[0].label,
                "jobs": len(jobs),
            })
            self.stats.checkpoint_bytes += n
            self._count("checkpoint_bytes", n)

        # Dep satisfaction spans batches: a dep completed in an earlier
        # batch of the same sweep is visible through the journal.
        dep_ok = set(self.journal.done) if self.journal is not None else set()

        todo: List[JobSpec] = []
        for spec in jobs:
            restored = self._restore(spec)
            if restored is not None:
                results[spec.job_id] = restored[0]
                aux[spec.job_id] = (restored[1], restored[2])
                self.stats.restored += 1
                self._count("restored")
            else:
                todo.append(spec)
        self._notify()

        if todo:
            if self.n_workers <= 1 or len(todo) <= 1:
                self._run_inline(
                    todo, results, aux, failures, want_trace,
                    want_metrics, dep_ok, degraded=False,
                )
            else:
                self._run_pool(
                    todo, results, aux, failures, want_trace,
                    want_metrics, dep_ok,
                )

        # Absorb instrumentation in submission order, so a fanned-out
        # (or resumed) sweep traces exactly like runs arriving one by
        # one.
        for job_id in ids:
            events, metrics = aux.get(job_id, (None, None))
            if want_trace and events:
                tracer.absorb(events)
            if want_metrics and metrics is not None:
                registry.absorb(metrics)

        self._notify()
        if failures:
            raise failures[0]
        return [results[job_id] for job_id in ids]

    # -- inline (serial / degraded) path ----------------------------------
    def _run_inline(self, todo, results, aux, failures, want_trace,
                    want_metrics, dep_ok, degraded: bool) -> None:
        """Run *todo* in the parent, checkpointing each completion.

        Used both for ``n_workers <= 1`` batches and as the degraded
        fallback when the pool is exhausted; instrumentation is
        isolated per job exactly like a worker would, so the absorb
        step behaves identically on every path.
        """
        if degraded:
            self.stats.serial_fallback = True
        pending = deque(todo)
        deferred = 0
        while pending:
            spec = pending.popleft()
            if any(d not in results and d not in dep_ok
                   for d in spec.deps):
                pending.append(spec)
                deferred += 1
                if deferred > len(pending):
                    raise ConfigurationError(
                        "dependency cycle among jobs: "
                        + ", ".join(s.label for s in pending)
                    )
                continue
            deferred = 0
            if failures and self.fail_fast:
                return
            t0 = time.monotonic()
            try:
                result, events, metrics = _execute(
                    spec.fn, spec.arg, want_trace, want_metrics
                )
            except BaseException as exc:
                text = traceback.format_exc()
                self.stats.failed += 1
                self._journal_failure(spec, f"{type(exc).__name__}: {exc}")
                failures.append(
                    self._failure(spec, "raised", text, cause=exc)
                )
                self._notify()
                continue
            elapsed = time.monotonic() - t0
            results[spec.job_id] = result
            aux[spec.job_id] = (events, metrics)
            self.stats.done += 1
            self._count("done")
            self._checkpoint(spec, 0, result, events, metrics, elapsed)
            self._notify()

    # -- pool path ---------------------------------------------------------
    def _spawn(self, ctx, want_trace, want_metrics) -> _Shard:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, want_trace, want_metrics),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Shard(proc, parent_conn)

    def _run_pool(self, todo, results, aux, failures, want_trace,
                  want_metrics, dep_ok) -> None:
        import multiprocessing as mp
        from multiprocessing.connection import wait as conn_wait

        ctx = mp.get_context()
        queue: List[_Pending] = []
        seq = 0
        for spec in todo:
            heapq.heappush(queue, _Pending(0.0, seq, spec, 0))
            seq += 1
        shards: List[_Shard] = []
        respawns = 0
        n_start = min(self.n_workers, len(todo))
        try:
            for _ in range(n_start):
                shards.append(self._spawn(ctx, want_trace, want_metrics))

            def requeue(spec: JobSpec, attempt: int, why: str) -> None:
                nonlocal seq
                if attempt > self.policy.max_retries:
                    self.stats.failed += 1
                    self._journal_failure(spec, why)
                    failures.append(self._failure(
                        spec,
                        f"exhausted its retry budget "
                        f"({self.policy.max_retries} retries)",
                        why,
                    ))
                    return
                self.stats.retries += 1
                self._count("retries")
                ready = time.monotonic() + self.policy.backoff(attempt)
                heapq.heappush(queue, _Pending(ready, seq, spec, attempt))
                seq += 1

            def reap(shard: _Shard, why: str, adopted: bool) -> None:
                """Remove a dead/hung shard, re-queueing its job."""
                nonlocal respawns
                spec, attempt = shard.spec, shard.attempt
                shard.conn.close()
                if shard.proc.is_alive():
                    shard.proc.kill()
                shard.proc.join(timeout=5.0)
                shards.remove(shard)
                if spec is not None:
                    if adopted:
                        self.stats.adoptions += 1
                        self._count("adoptions")
                        self._adopted_jobs[spec.job_id] = (
                            self._adopted_jobs.get(spec.job_id, 0) + 1
                        )
                    requeue(spec, attempt + 1, why)
                outstanding = len(queue) + sum(
                    1 for s in shards if s.spec is not None
                )
                if (
                    outstanding > len(shards)
                    and respawns < self.max_respawns
                    and not (failures and self.fail_fast)
                ):
                    respawns += 1
                    self.stats.respawns += 1
                    self._count("respawns")
                    shards.append(
                        self._spawn(ctx, want_trace, want_metrics)
                    )
                self._notify()

            def finish(shard: _Shard, msg) -> None:
                kind = msg[0]
                spec, attempt = shard.spec, shard.attempt
                started = shard.started
                shard.spec, shard.deadline, shard.started = None, None, None
                if kind == "ok":
                    _, job_id, result, events, metrics = msg
                    results[job_id] = result
                    aux[job_id] = (events, metrics)
                    self.stats.done += 1
                    self._count("done")
                    elapsed = (
                        time.monotonic() - started
                        if started is not None else 0.0
                    )
                    self._checkpoint(
                        spec, attempt, result, events, metrics, elapsed
                    )
                else:
                    _, job_id, text, tb, exc_bytes = msg
                    if self.retry_errors:
                        requeue(spec, attempt + 1, text)
                    else:
                        cause = None
                        if exc_bytes is not None:
                            try:
                                cause = pickle.loads(exc_bytes)
                            except Exception:
                                cause = None
                        self.stats.failed += 1
                        self._journal_failure(spec, text)
                        failures.append(self._failure(
                            spec, "raised in its worker", tb or text,
                            cause=cause,
                        ))
                self._notify()

            while True:
                now = time.monotonic()
                busy = [s for s in shards if s.spec is not None]
                idle = [s for s in shards if s.spec is None]
                gauge = self._m.get("queue_depth")
                if gauge is not None:
                    gauge.set(len(queue) + len(busy))
                # Dispatch every ready job onto an idle shard; jobs
                # whose deps are still running are skipped this round
                # (a completion wakes the loop again).
                stop_dispatch = failures and self.fail_fast
                blocked: List[_Pending] = []
                while (queue and idle and not stop_dispatch
                       and queue[0].ready_at <= now):
                    item = heapq.heappop(queue)
                    if any(d not in results and d not in dep_ok
                           for d in item.spec.deps):
                        blocked.append(item)
                        continue
                    shard = idle.pop()
                    shard.spec = item.spec
                    shard.attempt = item.attempt
                    shard.started = now
                    shard.deadline = (
                        now + self.job_timeout
                        if self.job_timeout is not None else None
                    )
                    try:
                        shard.conn.send(
                            (item.spec.job_id, item.spec.fn, item.spec.arg)
                        )
                        busy.append(shard)
                    except (OSError, ValueError, BrokenPipeError) as exc:
                        shard.spec = None
                        reap(shard, f"shard died at dispatch: {exc}",
                             adopted=False)
                        heapq.heappush(queue, item)
                        idle = [s for s in shards if s.spec is None]
                for item in blocked:
                    heapq.heappush(queue, item)
                if stop_dispatch:
                    queue = []
                if not busy and not queue:
                    break
                if not busy and queue and all(
                    any(d not in results and d not in dep_ok
                        for d in p.spec.deps)
                    for p in queue
                ):
                    raise ConfigurationError(
                        "dependency cycle among jobs: "
                        + ", ".join(p.spec.label for p in queue)
                    )
                if not shards:
                    # Pool exhausted; degrade to inline execution of
                    # whatever is left (deps honoured there too).
                    remaining = [
                        p.spec for p in sorted(queue)
                        if p.spec.job_id not in results
                    ]
                    queue = []
                    self._run_inline(
                        remaining, results, aux, failures, want_trace,
                        want_metrics, dep_ok, degraded=True,
                    )
                    break
                if not busy:
                    # Only backoff-delayed jobs remain.
                    time.sleep(
                        min(max(queue[0].ready_at - now, 0.0), 0.5)
                    )
                    continue
                # Wait for completions, deaths (EOF), or the next
                # deadline/backoff expiry.
                timeout = 0.25
                deadlines = [
                    s.deadline for s in busy if s.deadline is not None
                ]
                if deadlines:
                    timeout = min(timeout, max(min(deadlines) - now, 0.0))
                if queue:
                    timeout = min(
                        timeout, max(queue[0].ready_at - now, 0.0)
                    )
                ready = conn_wait(
                    [s.conn for s in busy], timeout=timeout
                )
                by_conn = {s.conn: s for s in busy}
                for conn in ready:
                    shard = by_conn[conn]
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        reap(
                            shard,
                            f"worker pid {shard.proc.pid} died "
                            f"(exitcode {shard.proc.exitcode})",
                            adopted=True,
                        )
                        continue
                    finish(shard, msg)
                now = time.monotonic()
                for shard in list(shards):
                    if shard.spec is not None and shard.deadline is not None \
                            and now > shard.deadline:
                        self.stats.timeouts += 1
                        self._count("timeouts")
                        reap(
                            shard,
                            f"timed out after {self.job_timeout:.1f}s "
                            f"(worker pid {shard.proc.pid} killed)",
                            adopted=False,
                        )
                    elif not shard.proc.is_alive():
                        # Death between messages (idle shard, or busy
                        # one whose EOF has not surfaced yet) — recv
                        # any final message first, then reap.
                        if shard.spec is not None and shard.conn.poll(0):
                            try:
                                finish(shard, shard.conn.recv())
                            except (EOFError, OSError):
                                pass
                        if shard.spec is not None:
                            reap(
                                shard,
                                f"worker pid {shard.proc.pid} died "
                                f"(exitcode {shard.proc.exitcode})",
                                adopted=True,
                            )
                        else:
                            reap(shard, "idle worker died", adopted=False)
        finally:
            for shard in shards:
                try:
                    shard.conn.send(None)
                except Exception:
                    pass
            for shard in shards:
                shard.proc.join(timeout=2.0)
                if shard.proc.is_alive():
                    shard.proc.kill()
                    shard.proc.join(timeout=5.0)
                shard.conn.close()
