"""Append-only on-disk checkpoint journal for sweep jobs.

Format: JSON-lines, one record per line, ``fsync`` after every append
so a checkpoint survives the writing process being SIGKILLed the next
instant.  Record kinds:

* ``{"kind": "done", "job": id, "label": ..., "attempt": n,
  "result": <enc>, "events": b64?, "metrics": b64?, "elapsed": s}`` —
  a completed job and its result;
* ``{"kind": "failed", "job": id, "label": ..., "error": text}`` — a
  job that exhausted its budget (replay does **not** restore these:
  a resumed sweep retries previously failed jobs);
* ``{"kind": "plan", "label": ..., "jobs": n}`` — batch bookkeeping so
  progress tools can show pending counts.

Results are stored so that restoring one is **bit-identical** to
recomputing it: values made only of JSON-exact types (``None``,
``bool``, ``int``, ``float``, ``str``, and ``list``/``dict`` of those
— checked by exact type, so tuples and numpy scalars don't sneak
through a lossy round-trip) are stored as plain JSON; anything else is
pickled and base64-encoded.  Python's ``json`` round-trips ``float``
via ``repr`` exactly, so both paths preserve every bit.

Truncation tolerance: a crash can leave a half-written final line.
:func:`replay` silently discards an unparseable **last** line; an
unparseable line anywhere earlier stops replay at that point (the
records after it are untrusted) with a warning.  Either way every
checkpoint before the damage survives.
"""

from __future__ import annotations

import base64
import io
import json
import os
import pickle
import warnings
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Journal",
    "decode_result",
    "encode_result",
    "get_active_state_dir",
    "journal_in",
    "replay",
    "set_active_state_dir",
    "summarize",
]

JOURNAL_NAME = "journal.jsonl"


def _json_exact(value: Any) -> bool:
    """True when ``json.loads(json.dumps(value))`` is *value*, exactly.

    Exact-type checks on purpose: a tuple would come back a list, a
    numpy scalar a plain float — same ``==`` but not the same object
    shape, which breaks the bit-identity contract downstream.
    """
    t = type(value)
    if value is None or t in (bool, int, str):
        return True
    if t is float:
        # NaN/inf are not strict JSON; route them through pickle.
        return value == value and value not in (float("inf"), float("-inf"))
    if t is list:
        return all(_json_exact(v) for v in value)
    if t is dict:
        return all(
            type(k) is str and _json_exact(v) for k, v in value.items()
        )
    return False


def encode_result(value: Any) -> Dict[str, Any]:
    """Journal encoding of a job result (see module docstring)."""
    if _json_exact(value):
        return {"json": value}
    return {"b64": base64.b64encode(pickle.dumps(value)).decode("ascii")}


def decode_result(enc: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_result`."""
    if "json" in enc:
        return enc["json"]
    return pickle.loads(base64.b64decode(enc["b64"]))


def replay(path: str) -> Tuple[List[dict], int]:
    """Parse a journal file into ``(records, n_discarded_lines)``.

    Missing file -> ``([], 0)``.  See the module docstring for the
    truncation/corruption policy.
    """
    try:
        with io.open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
    except FileNotFoundError:
        return [], 0
    if lines and lines[-1] == "":
        lines.pop()
    records: List[dict] = []
    for i, line in enumerate(lines):
        try:
            rec = json.loads(line)
            if not isinstance(rec, dict):
                raise ValueError("journal line is not an object")
        except (ValueError, json.JSONDecodeError):
            dropped = len(lines) - i
            if i < len(lines) - 1:
                warnings.warn(
                    f"journal {path}: corrupt record at line {i + 1}; "
                    f"discarding it and the {dropped - 1} line(s) after "
                    "it (checkpoints before the damage survive)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return records, dropped
        records.append(rec)
    return records, 0


class Journal:
    """One sweep's checkpoint log, with an in-memory replay index.

    ``done`` maps job id -> its latest ``done`` record; ``plans`` maps
    batch label -> planned job count.  Appends keep both in sync, so a
    scheduler sharing the journal across many batches (one sweep = many
    ``run_samples`` calls) replays the file once.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = path
        self.fsync = fsync
        self.done: Dict[str, dict] = {}
        self.failed: Dict[str, dict] = {}
        self.plans: Dict[str, int] = {}
        self.bytes_appended = 0
        self.discarded_lines = 0
        records, self.discarded_lines = replay(path)
        for rec in records:
            self._index(rec)
        self._fh: Optional[io.TextIOWrapper] = None

    def _index(self, rec: dict) -> None:
        kind = rec.get("kind")
        if kind == "done" and "job" in rec:
            self.done[rec["job"]] = rec
            self.failed.pop(rec["job"], None)
        elif kind == "failed" and "job" in rec:
            self.failed[rec["job"]] = rec
        elif kind == "plan" and "label" in rec:
            self.plans[rec["label"]] = int(rec.get("jobs", 0))

    def append(self, rec: dict) -> int:
        """Durably append one record; returns bytes written."""
        line = json.dumps(rec, separators=(",", ":")) + "\n"
        if self._fh is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = io.open(self.path, "a", encoding="utf-8")
        self._fh.write(line)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._index(rec)
        n = len(line.encode("utf-8"))
        self.bytes_appended += n
        return n

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _base_label(label: str) -> str:
    """Cell label without the per-shard ``#N`` suffix."""
    base, sep, tail = label.rpartition("#")
    if sep and tail.isdigit():
        return base
    return label


def summarize(state_dir: str) -> dict:
    """Progress summary of a journal for status/partial rendering.

    Per cell (plan label): planned/done/pending/retried/failed counts,
    jobs adopted from dead workers, plus elapsed seconds over completed
    jobs; overall totals include
    the journal size in bytes.  Read-only: never creates the file.
    ``pending`` is planned minus done, floored at zero (a cell label
    reused across batches keeps only its latest plan).
    """
    path = os.path.join(state_dir, JOURNAL_NAME)
    records, discarded = replay(path)
    labels: Dict[str, Dict[str, float]] = {}

    def cell(label: str) -> Dict[str, float]:
        return labels.setdefault(label, {
            "planned": 0, "done": 0, "retried": 0, "failed": 0,
            "adopted": 0, "elapsed": 0.0,
        })

    done_jobs: Dict[str, str] = {}
    failed_jobs: Dict[str, str] = {}
    for rec in records:
        kind = rec.get("kind")
        if kind == "plan":
            cell(rec.get("label", "?"))["planned"] = int(
                rec.get("jobs", 0)
            )
        elif kind == "done" and "job" in rec:
            label = _base_label(rec.get("label", "?"))
            c = cell(label)
            c["done"] += 1
            c["elapsed"] += float(rec.get("elapsed", 0.0))
            if int(rec.get("attempt", 0)) > 0:
                c["retried"] += 1
            if int(rec.get("adopted", 0)) > 0:
                c["adopted"] += 1
            done_jobs[rec["job"]] = label
            failed_jobs.pop(rec["job"], None)
        elif kind == "failed" and "job" in rec:
            failed_jobs[rec["job"]] = _base_label(rec.get("label", "?"))
    for label in failed_jobs.values():
        cell(label)["failed"] += 1
    for c in labels.values():
        c["pending"] = max(int(c["planned"]) - int(c["done"]), 0)
    try:
        size = os.path.getsize(path)
    except OSError:
        size = 0
    totals = {
        "cells": len(labels),
        "planned": sum(int(c["planned"]) for c in labels.values()),
        "done": sum(int(c["done"]) for c in labels.values()),
        "pending": sum(int(c["pending"]) for c in labels.values()),
        "retried": sum(int(c["retried"]) for c in labels.values()),
        "failed": sum(int(c["failed"]) for c in labels.values()),
        "adopted": sum(int(c["adopted"]) for c in labels.values()),
        "journal_bytes": size,
        "discarded_lines": discarded,
    }
    return {"labels": labels, "totals": totals}


# -- process-wide active state directory ---------------------------------
#
# Mirrors the tracer/registry pattern: an explicitly installed state
# dir wins, else the REPRO_JOURNAL environment variable (which also
# propagates to worker processes and subcommands), else None (no
# checkpointing).  One Journal instance is kept per directory so many
# scheduler batches in one sweep share a single replay.

_active_state_dir: Optional[str] = None
_journals: Dict[str, Journal] = {}


def set_active_state_dir(path: Optional[str]) -> None:
    global _active_state_dir
    _active_state_dir = path


def get_active_state_dir() -> Optional[str]:
    if _active_state_dir is not None:
        return _active_state_dir
    env = os.environ.get("REPRO_JOURNAL", "").strip()
    return env or None


def journal_in(state_dir: str) -> Journal:
    """The shared :class:`Journal` for *state_dir* (created on demand)."""
    path = os.path.join(state_dir, JOURNAL_NAME)
    j = _journals.get(path)
    if j is None:
        j = _journals[path] = Journal(path)
    return j
