"""Job identity for the sharded sweep scheduler.

A *job* is one unit of resumable work: a picklable callable plus one
argument (for a sweep shard, the pre-derived ``sample_seed``).  What
makes a sweep resumable is that each job has a **deterministic id**
hashed from the job's full specification — the function it runs, the
cell parameters baked into it, and the seed — so a journal written by
one process names exactly the same jobs when a later process replays
the same sweep.  Nothing in the id depends on ``PYTHONHASHSEED``,
process ids, or wall-clock time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Optional, Tuple

__all__ = ["JobSpec", "describe_fn", "job_id", "make_job", "repro_command"]


def _describe_value(value: Any) -> str:
    """Deterministic text for a job-argument value.

    ``repr`` is stable across processes for the kinds of values cell
    partials carry (ints, floats, strings, bools, tuples of those,
    dataclasses with such fields, enums).  Containers recurse so a
    nested tuple of floats renders the same everywhere.
    """
    if isinstance(value, (tuple, list)):
        inner = ",".join(_describe_value(v) for v in value)
        return f"[{inner}]" if isinstance(value, list) else f"({inner})"
    if isinstance(value, dict):
        items = ",".join(
            f"{_describe_value(k)}:{_describe_value(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{items}}}"
    return repr(value)


def describe_fn(fn: Callable) -> Tuple[str, Tuple, dict]:
    """``(qualified_name, partial_args, partial_kwargs)`` for *fn*.

    Unwraps nested :func:`functools.partial` layers down to the
    underlying callable, accumulating bound positional/keyword
    arguments in application order — the same flattening pickle uses,
    so two partials that run identically describe identically.
    """
    args: Tuple = ()
    kwargs: dict = {}
    chain = []
    while isinstance(fn, partial):
        chain.append(fn)
        fn = fn.func
    for p in reversed(chain):
        args = args + p.args
        kwargs = {**kwargs, **(p.keywords or {})}
    name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    return name, args, kwargs


def job_id(label: str, fn: Callable, arg: Any) -> str:
    """Deterministic 16-hex-digit id for ``fn(arg)`` under *label*.

    The hash covers the label, the fully-qualified function name, every
    argument a partial bound, and the job's own argument — so a journal
    entry can only ever be adopted by the job that would recompute the
    identical result.
    """
    name, p_args, p_kwargs = describe_fn(fn)
    key = "\x1f".join(
        (
            label,
            name,
            _describe_value(p_args),
            _describe_value(p_kwargs),
            _describe_value(arg),
        )
    )
    return hashlib.sha256(key.encode("utf-8", "backslashreplace")).hexdigest()[:16]


def repro_command(fn: Callable, arg: Any) -> str:
    """One-liner that reruns ``fn(arg)`` outside any harness.

    Only emitted when the call is expressible as plain importable
    Python (module-level function, arguments with faithful reprs);
    otherwise returns ``""`` rather than a command that would not
    reproduce the failure.
    """
    name, p_args, p_kwargs = describe_fn(fn)
    module, _, func = name.rpartition(".")
    if not module or "<" in name:
        return ""
    parts = [repr(a) for a in p_args]
    parts.append(repr(arg))
    parts += [f"{k}={v!r}" for k, v in p_kwargs.items()]
    call = f"{func}({', '.join(parts)})"
    if any("<" in p or " at 0x" in p for p in parts):
        return ""
    return (
        f"PYTHONPATH=src python -c "
        f'"from {module} import {func}; print({call})"'
    )


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of a sweep.

    ``sample_seed`` is carried redundantly with ``arg`` when the job is
    a sample shard (the scheduler never interprets ``arg``); ``deps``
    lists job ids that must be done before this job is dispatched.
    """

    job_id: str
    label: str
    fn: Callable
    arg: Any
    sample_seed: Optional[int] = None
    deps: Tuple[str, ...] = field(default_factory=tuple)


def make_job(
    fn: Callable,
    arg: Any,
    label: Optional[str] = None,
    index: Optional[int] = None,
    sample_seed: Optional[int] = None,
    deps: Tuple[str, ...] = (),
) -> JobSpec:
    """Build a :class:`JobSpec` with a derived label and id.

    The default label is the qualified function name; an *index* (the
    job's position in its batch) is appended so sibling shards of one
    cell stay distinguishable in journals and failure messages.
    """
    if label is None:
        label = describe_fn(fn)[0]
    if index is not None:
        label = f"{label}#{index}"
    if sample_seed is None and isinstance(arg, int):
        sample_seed = arg
    return JobSpec(
        job_id=job_id(label, fn, arg),
        label=label,
        fn=fn,
        arg=arg,
        sample_seed=sample_seed,
        deps=tuple(deps),
    )
