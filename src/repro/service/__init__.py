"""Sharded, checkpointed, resumable job scheduling for sweeps.

The experiment-as-a-service layer (DESIGN.md §14): sweeps are
decomposed into jobs with deterministic ids
(:mod:`~repro.service.job`), executed by a supervised worker pool with
retry/timeout budgets and dead-worker adoption
(:mod:`~repro.service.scheduler`), and checkpointed to an append-only
fsync'd JSON-lines journal (:mod:`~repro.service.journal`) so an
interrupted sweep resumes bit-identically.  The user-facing entry
points are :mod:`repro.harness.parallel` (which routes through this
package) and the ``python -m repro.tools.serve`` daemon/client.
"""

from repro.service.job import JobSpec, job_id, make_job, repro_command
from repro.service.journal import (
    Journal,
    get_active_state_dir,
    journal_in,
    set_active_state_dir,
)
from repro.service.scheduler import Scheduler, SchedulerStats

__all__ = [
    "JobSpec",
    "Journal",
    "Scheduler",
    "SchedulerStats",
    "get_active_state_dir",
    "job_id",
    "journal_in",
    "make_job",
    "repro_command",
    "set_active_state_dir",
]
