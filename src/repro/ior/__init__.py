"""IOR-like benchmark workload (Section II's measurement instrument)."""

from repro.ior.config import IorConfig
from repro.ior.runner import run_ior

__all__ = ["IorConfig", "run_ior"]
