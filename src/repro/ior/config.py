"""IOR run configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.units import MB

__all__ = ["IorConfig"]


@dataclass(frozen=True)
class IorConfig:
    """One IOR invocation, paper-style.

    Parameters
    ----------
    n_writers:
        MPI processes, each writing one block.
    block_size:
        Bytes per writer (weak scaling: total = n_writers * block_size).
    api:
        "posix" (one file per writer, the paper's configuration) or
        "mpiio" (single shared file).
    n_osts_used:
        Storage targets the writers are split across ("the IOR program
        is configured to use 512 OSTs"); ``None`` = the whole pool.
    include_flush:
        End the timed region with an explicit flush.  Section II
        measurements omit it; set True to measure to-disk bandwidth.
    """

    n_writers: int
    block_size: float = 128.0 * MB
    api: str = "posix"
    n_osts_used: Optional[int] = None
    include_flush: bool = False

    def __post_init__(self):
        if self.n_writers < 1:
            raise ValueError("n_writers must be >= 1")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.api not in ("posix", "mpiio"):
            raise ValueError(f"unknown api {self.api!r}")

    @property
    def total_bytes(self) -> float:
        return self.n_writers * self.block_size
