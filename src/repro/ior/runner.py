"""Executes an IOR configuration against a machine.

The runner is a thin adapter: an IOR block is a one-variable app
kernel, and the POSIX/MPI-IO access patterns are exactly the
corresponding transports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.apps.base import AppKernel, Variable
from repro.core.transports.base import OutputResult
from repro.core.transports.mpiio import MpiIoTransport
from repro.core.transports.posix import PosixTransport
from repro.ior.config import IorConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.base import Machine

__all__ = ["run_ior", "ior_app"]


def ior_app(block_size: float) -> AppKernel:
    """The degenerate app kernel IOR writes: one opaque block."""
    n_doubles = max(1, int(block_size / 8))
    return AppKernel(
        "ior",
        [Variable("data", shape=(n_doubles,), dtype="f8",
                  value_range=(0.0, 1.0))],
    )


def run_ior(
    machine: "Machine",
    config: IorConfig,
    output_name: str = "ior",
) -> OutputResult:
    """Run one IOR test; returns the transport's OutputResult.

    The machine must have been built with ``n_ranks ==
    config.n_writers``.
    """
    if machine.n_ranks != config.n_writers:
        raise ValueError(
            f"machine has {machine.n_ranks} ranks but the IOR config "
            f"wants {config.n_writers} writers"
        )
    app = ior_app(config.block_size)
    if config.api == "posix":
        transport = PosixTransport(
            n_osts_used=config.n_osts_used,
            include_flush=config.include_flush,
        )
    else:
        transport = MpiIoTransport(
            stripe_count=config.n_osts_used, build_index=False
        )
    return transport.run(machine, app, output_name=output_name)
