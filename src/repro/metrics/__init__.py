"""Statistics the paper reports: bandwidth summaries, CoV, imbalance."""

from repro.metrics.stats import (
    SampleStats,
    coefficient_of_variation,
    imbalance_factor,
    summarize,
)
from repro.metrics.histogram import Histogram, text_histogram
from repro.metrics.timeline import WriterTimeline
from repro.metrics.recorder import LoadRecorder, LoadSample

__all__ = [
    "Histogram",
    "LoadRecorder",
    "LoadSample",
    "SampleStats",
    "WriterTimeline",
    "coefficient_of_variation",
    "imbalance_factor",
    "summarize",
    "text_histogram",
]
