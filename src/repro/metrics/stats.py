"""Summary statistics used throughout the evaluation.

Conventions follow the paper: Table I reports average bandwidth,
standard deviation and "covariance" (their term for the coefficient of
variation, std/mean, shown as a percentage); Section II defines the
**imbalance factor** of an IO action as "the ratio of the slowest vs
fastest write times across all writers".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "SampleStats",
    "coefficient_of_variation",
    "imbalance_factor",
    "summarize",
]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std/mean (the paper's "covariance"), as a fraction.

    Uses the population standard deviation, matching how monitoring
    repositories summarize full sample sets.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    mean = arr.mean()
    if mean == 0:
        return float("inf")
    return float(arr.std() / mean)


def imbalance_factor(write_times: Sequence[float]) -> float:
    """Slowest/fastest write time across the writers of one IO action."""
    arr = np.asarray(write_times, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one write time")
    if (arr < 0).any():
        raise ValueError("write times must be non-negative")
    fastest = arr.min()
    if fastest == 0:
        return float("inf")
    return float(arr.max() / fastest)


@dataclass(frozen=True)
class SampleStats:
    """Summary of one metric over repeated samples."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def cov(self) -> float:
        """Coefficient of variation (std/mean)."""
        if self.mean == 0:
            return float("inf")
        return self.std / self.mean

    @property
    def cov_percent(self) -> float:
        return 100.0 * self.cov

    def row(self, scale: float = 1.0) -> tuple:
        """(n, mean, std, cov%) scaled — a Table-I-shaped row."""
        return (
            self.n,
            self.mean / scale,
            self.std / scale,
            self.cov_percent,
        )


def summarize(values: Sequence[float]) -> SampleStats:
    """Summarize a sample set."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one value")
    return SampleStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
