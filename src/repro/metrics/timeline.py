"""Per-writer timeline analysis (Fig. 3 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.metrics.stats import imbalance_factor

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transports.base import WriterTiming

__all__ = ["WriterTimeline"]


@dataclass(frozen=True)
class WriterTimeline:
    """Per-writer write durations of one IO action, rank-ordered."""

    durations: np.ndarray

    @classmethod
    def of(cls, timings: Sequence["WriterTiming"]) -> "WriterTimeline":
        ordered = sorted(timings, key=lambda w: w.rank)
        return cls(np.array([w.duration for w in ordered]))

    @property
    def n_writers(self) -> int:
        return int(self.durations.size)

    @property
    def imbalance_factor(self) -> float:
        return imbalance_factor(self.durations)

    @property
    def slowest(self) -> float:
        return float(self.durations.max())

    @property
    def fastest(self) -> float:
        return float(self.durations.min())

    def slow_writer_ranks(self, factor: float = 2.0) -> List[int]:
        """Ranks slower than ``factor``x the median."""
        med = float(np.median(self.durations))
        return np.nonzero(self.durations > factor * med)[0].tolist()

    def speed_ratio_data_equivalent(self) -> float:
        """How much more data the fastest target could have absorbed
        than the slowest in the same time (the paper notes ~2x even at
        imbalance 1.22... this is simply the imbalance factor viewed
        as a throughput ratio for equal byte counts)."""
        return self.imbalance_factor
