"""Histograms of IO bandwidth samples (Fig. 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Histogram", "text_histogram"]


@dataclass(frozen=True)
class Histogram:
    """Fixed-bin histogram of a sample set."""

    edges: np.ndarray  # n_bins + 1
    counts: np.ndarray  # n_bins

    @classmethod
    def of(
        cls,
        values: Sequence[float],
        n_bins: int = 20,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> "Histogram":
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("need at least one value")
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        lo = arr.min() if low is None else low
        hi = arr.max() if high is None else high
        if hi <= lo:
            hi = lo + 1.0
        counts, edges = np.histogram(arr, bins=n_bins, range=(lo, hi))
        return cls(edges=edges, counts=counts)

    @property
    def n(self) -> int:
        return int(self.counts.sum())

    @property
    def mode_bin(self) -> int:
        return int(self.counts.argmax())

    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def spread_mass(self, frac_of_mode: float = 0.5) -> int:
        """Number of bins at least ``frac_of_mode`` of the peak —
        a width proxy for comparing histogram shapes."""
        peak = self.counts.max()
        if peak == 0:
            return 0
        return int((self.counts >= frac_of_mode * peak).sum())


def text_histogram(
    hist: Histogram,
    width: int = 40,
    label_fmt: str = "{:9.1f}",
    unit: str = "",
) -> List[str]:
    """Render a histogram as terminal bar-chart lines."""
    peak = max(int(hist.counts.max()), 1)
    lines = []
    centers = hist.bin_centers()
    for c, n in zip(centers, hist.counts):
        bar = "#" * int(round(width * n / peak))
        lines.append(f"{label_fmt.format(c)}{unit} |{bar} {n}")
    return lines
