"""Time-series recording of storage-system state during a run.

A :class:`LoadRecorder` samples the fabric and OST pool on a fixed
simulated-time cadence, producing per-OST timelines of stream counts,
inflow and cache fill.  This is the observability the paper's authors
used system logs for: with it you can *see* adaptive IO draining all
targets together while MPI-IO leaves a straggler busy long after the
rest idle.

The sampling loop itself lives in
:class:`repro.telemetry.OnlineMonitor` (timer mode) — one
implementation shared with the ambient telemetry path — and the
recorder keeps its historical contract on top: exact caller-owned
cadence (each sample forces fabric accounting up to now, a deliberate,
explicit perturbation), samples retained for the analysis methods
below, and no decimation.

Usage::

    rec = LoadRecorder(machine, interval=0.5)
    rec.start()
    ...run the output...
    rec.stop()
    print(rec.utilization_summary())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

import numpy as np

from repro.telemetry.monitor import OnlineMonitor, PoolSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.base import Machine

__all__ = ["LoadRecorder", "LoadSample"]

#: Sample record; the telemetry monitor's :class:`PoolSample` is a
#: strict superset of the original ``LoadSample`` fields (``time``,
#: ``stream_counts``, ``inflow``, ``cache_fill``), so the old name is
#: kept as an alias.
LoadSample = PoolSample


class LoadRecorder:
    """Samples pool/fabric state every ``interval`` simulated seconds."""

    def __init__(self, machine: "Machine", interval: float = 1.0):
        self.machine = machine
        self._monitor = OnlineMonitor(
            machine,
            interval=interval,
            mode="timer",
            keep_samples=True,
            max_samples=None,
        )

    @property
    def interval(self) -> float:
        return self._monitor.interval

    @property
    def samples(self) -> List[PoolSample]:
        return self._monitor.samples

    def start(self) -> None:
        """Begin (or, after :meth:`stop`, resume) sampling.

        Each start opens a fresh sampling window; samples accumulate
        across windows.  Call :meth:`clear` first for a clean slate.
        """
        self._monitor.start()

    def stop(self) -> None:
        """Stop sampling and cancel the pending wakeup.

        The sampler is interrupted at its current wait, so the calendar
        holds no recorder event afterwards and no extra sample lands
        one interval later.
        """
        self._monitor.stop()

    def clear(self) -> None:
        """Drop all recorded samples (e.g. between windows)."""
        self._monitor.clear()

    # -- analysis ----------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return len(self.samples)

    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.samples])

    def inflow_matrix(self) -> np.ndarray:
        """(n_samples, n_osts) inflow rates."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return np.vstack([s.inflow for s in self.samples])

    def busy_fraction(self) -> np.ndarray:
        """Per-OST fraction of samples with at least one active stream."""
        if not self.samples:
            raise ValueError("no samples recorded")
        counts = np.vstack([s.stream_counts for s in self.samples])
        return (counts > 0).mean(axis=0)

    def utilization_summary(self) -> Dict[str, float]:
        """Aggregate balance statistics over the recording window."""
        inflow = self.inflow_matrix()
        busy = self.busy_fraction()
        mean_inflow = inflow.mean(axis=0)
        total = mean_inflow.sum()
        if total > 0:
            share = mean_inflow / total
            # Jain's fairness index: 1.0 = perfectly even use of OSTs.
            fairness = float(
                share.sum() ** 2 / (len(share) * (share**2).sum())
            )
        else:
            fairness = float("nan")
        return {
            "n_samples": float(self.n_samples),
            "mean_busy_fraction": float(busy.mean()),
            "min_busy_fraction": float(busy.min()),
            "jain_fairness": fairness,
            "peak_total_inflow": float(inflow.sum(axis=1).max()),
        }

    def straggler_window(self, threshold: float = 0.5) -> float:
        """Seconds during which fewer than ``threshold`` of the OSTs
        that were ever used are still active — the long tail where a
        few stragglers hold the job."""
        if len(self.samples) < 2:
            return 0.0
        counts = np.vstack([s.stream_counts for s in self.samples])
        ever_used = (counts > 0).any(axis=0)
        n_used = int(ever_used.sum())
        if n_used == 0:
            return 0.0
        active_now = (counts[:, ever_used] > 0).sum(axis=1)
        # Ignore leading/trailing fully-idle samples.
        live = np.nonzero(active_now > 0)[0]
        if live.size == 0:
            return 0.0
        window = active_now[live[0]: live[-1] + 1]
        tail = window < threshold * n_used
        return float(tail.sum() * self.interval)
