"""Experiment harness: seeded multi-sample runs and report formatting.

One module per paper artifact lives in :mod:`repro.harness.figures`;
each exposes ``run(scale=..., base_seed=...)`` returning a structured
result whose ``render()`` prints the same rows/series the paper
reports.  ``scale`` selects a preset: "smoke" (seconds, used by
tests), "small" (the benchmark default — reduced machine, full shape),
"paper" (the publication configuration; hours of wall time).
"""

from repro.harness.experiment import (
    Scale,
    n_samples_override,
    run_samples,
    scale_from_env,
)
from repro.harness.parallel import parallel_map, resolve_jobs
from repro.harness.report import format_table, render_series

__all__ = [
    "Scale",
    "format_table",
    "n_samples_override",
    "parallel_map",
    "render_series",
    "resolve_jobs",
    "run_samples",
    "scale_from_env",
]
