"""Multi-tenant QoS sweep — bandwidth contracts on the shared fabric.

The paper's external-interference measurements (Section IV) treat
competing traffic as unmanaged weather; the QoS control plane makes it
a managed resource.  This sweep quantifies the difference: N tenants
with mixed SLOs — (N-1) "victim" tenants holding reserved floors and
one "scavenger" aggressor holding a low floor and a burst ceiling —
share one machine, each running its own adaptive-IO output.

Two modes per cell:

* ``adaptive`` — raw max-min fairness, no contracts (the ablation
  baseline: exactly the shared-scratch regime the paper measured);
* ``adaptive+qos`` — the same tenants under the QoS control plane
  (token-bucket metering with idle→busy borrowing + AIMD aggressor
  throttling).

Reported per cell: the victims' p99 per-writer completion latency and
the floor-normalized Jain fairness index over per-tenant served
throughput.  QoS must win on both — bounding the victims' tail is the
contract's whole point — while degrading the aggressor *gracefully*:
zero errored writes, every throttled byte ledgered.

A resilience cross-check re-runs the largest-N QoS cell with two OST
fail-stops injected mid-run: contracts must hold within tolerance (no
victim slows more than ``_FAULT_SLOWDOWN_TOL``× its fault-free QoS
completion) and no tenant may starve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List

import numpy as np

from repro.harness.experiment import (
    Scale,
    n_samples_override,
    resolve_preset,
    run_samples,
)
from repro.harness.report import format_table

__all__ = ["run", "QosResult", "MODES", "_FAULT_SLOWDOWN_TOL"]

# Pool shape follows the repo's other sweeps (Jaguar proportions); the
# tenant mix keeps the aggressor's rank count >= the victims' combined
# so the baseline regime is genuinely aggressor-dominated.
_PRESETS = {
    Scale.SMOKE: dict(n_osts=16, cap=8, victim_ranks=8, victim_mb=96.0,
                      aggressor_ranks=32, aggressor_mb=96.0,
                      tenant_counts=(2, 3), samples=1),
    Scale.SMALL: dict(n_osts=16, cap=8, victim_ranks=8, victim_mb=192.0,
                      aggressor_ranks=48, aggressor_mb=192.0,
                      tenant_counts=(2, 3), samples=2),
    Scale.LARGE: dict(n_osts=64, cap=32, victim_ranks=32, victim_mb=192.0,
                      aggressor_ranks=192, aggressor_mb=192.0,
                      tenant_counts=(2, 3, 5), samples=3),
    Scale.PAPER: dict(n_osts=128, cap=64, victim_ranks=64,
                      victim_mb=256.0, aggressor_ranks=384,
                      aggressor_mb=256.0, tenant_counts=(2, 3, 5),
                      samples=3),
}

#: Modes compared in every cell.
MODES = ("adaptive", "adaptive+qos")

#: Fault cross-check: max tolerated victim slowdown vs the fault-free
#: QoS cell with 2 of the pool's OSTs fail-stopped mid-run.
_FAULT_SLOWDOWN_TOL = 2.5

#: OSTs fail-stopped in the resilience cross-check cell.
_FAULT_K = 2

# Contract shape (fractions of the pool's guaranteed capacity): the
# victims split a reservation pool with *mixed* weights (tenant i gets
# weight 1 + i/4 — heterogeneous SLOs, not N copies of one contract);
# the scavenger reserves little and is ceiling-capped.
_VICTIM_FLOOR_FRAC = 0.8
_AGGRESSOR_FLOOR_FRAC = 0.08
_AGGRESSOR_CEILING_FRAC = 0.15


def _contracts(n_tenants: int, pool_bw: float, guaranteed: float):
    from repro.qos import TenantContract

    n_victims = n_tenants - 1
    weights = np.array([1.0 + 0.25 * i for i in range(n_victims)])
    victim_pool = _VICTIM_FLOOR_FRAC * guaranteed
    floors = victim_pool * weights / weights.sum()
    contracts = [
        TenantContract(f"victim{i}", floor=float(floors[i]))
        for i in range(n_victims)
    ]
    contracts.append(
        TenantContract(
            "scavenger",
            floor=_AGGRESSOR_FLOOR_FRAC * guaranteed,
            ceiling=_AGGRESSOR_CEILING_FRAC * pool_bw,
        )
    )
    return tuple(contracts)


def _tenant_jobs(n_tenants: int, victim_ranks: int, victim_mb: float,
                 aggressor_ranks: int, aggressor_mb: float):
    from repro.apps import AppKernel, Variable
    from repro.core.transports import AdaptiveTransport
    from repro.qos import TenantJob
    from repro.units import MB

    def app(name: str, mb: float):
        return AppKernel(name, [Variable("x", shape=(int(mb * MB / 8),))])

    jobs = [
        TenantJob(f"victim{i}", AdaptiveTransport(),
                  app("victim", victim_mb), victim_ranks)
        for i in range(n_tenants - 1)
    ]
    jobs.append(
        TenantJob("scavenger", AdaptiveTransport(),
                  app("scavenger", aggressor_mb), aggressor_ranks)
    )
    return jobs


def _mode_metrics(result, floors: np.ndarray) -> Dict[str, float]:
    """JSON-safe scalars for one multi-tenant run."""
    victims = result.outcomes[:-1]
    aggressor = result.outcomes[-1]
    durations = np.concatenate(
        [o.per_writer_durations for o in victims]
    )
    served = sum(o.served_bytes for o in result.outcomes)
    throttled = sum(o.throttled_bytes for o in result.outcomes)
    errored = sum(0 if o.clean else 1 for o in result.outcomes)
    return {
        "victim_p99_seconds": float(np.percentile(durations, 99)),
        "victim_mean_seconds": float(durations.mean()),
        "jain_index": float(result.fairness(floors)),
        "makespan_seconds": float(result.makespan),
        "aggressor_completion_seconds": float(
            aggressor.completion_seconds
        ),
        "served_gb": served / 1e9,
        "throttled_gb": throttled / 1e9,
        "errored_tenants": float(errored),
        "clean": 1.0 if result.clean else 0.0,
    }


def _one_cell(seed: int, n_tenants: int, n_osts: int, cap: int,
              victim_ranks: int, victim_mb: float, aggressor_ranks: int,
              aggressor_mb: float, with_faults_check: bool
              ) -> Dict[str, float]:
    """One N-tenant sample: baseline, QoS, and (optionally) QoS+faults.

    All three runs share the seed, so the only differences are the
    contract set and the injected failures.
    """
    from repro.faults import FaultEvent, FaultPlan, with_faults
    from repro.machines import jaguar
    from repro.qos import QosConfig, run_tenants

    spec = jaguar(n_osts=n_osts).with_overrides(max_stripe_count=cap)
    n_ranks = victim_ranks * (n_tenants - 1) + aggressor_ranks

    def build():
        return spec.build(n_ranks=n_ranks, seed=seed)

    def jobs():
        return _tenant_jobs(n_tenants, victim_ranks, victim_mb,
                            aggressor_ranks, aggressor_mb)

    pool_bw = n_osts * spec.ost_config.drain_peak
    config = QosConfig(
        contracts=_contracts(n_tenants, pool_bw, 0.8 * pool_bw)
    )
    floors = config.floors()

    base = run_tenants(build(), jobs())
    qos = run_tenants(build(), jobs(), qos=config)

    out: Dict[str, float] = {}
    for prefix, result in (("base", base), ("qos", qos)):
        for key, value in _mode_metrics(result, floors).items():
            out[f"{prefix}_{key}"] = value

    if not with_faults_check:
        return out

    # Resilience cross-check: fail 2 OSTs while the *victims* are
    # still mid-write (the makespan is scavenger-dominated, so anchor
    # on the slowest victim's fault-free completion); contracts must
    # hold within tolerance and every tenant must still complete
    # durably (backpressure, not errors).
    victim_done = max(o.completion_seconds for o in qos.outcomes[:-1])
    fail_at = max(0.5 * victim_done, 1e-3)
    plan = FaultPlan(
        events=tuple(
            FaultEvent(time=fail_at, kind="ost_fail",
                       target=(i * n_osts) // _FAULT_K)
            for i in range(_FAULT_K)
        )
    ).with_policy(run_timeout=max(120.0, 50.0 * qos.makespan))
    with with_faults(plan):
        faulted = run_tenants(build(), jobs(), qos=config)
    for key, value in _mode_metrics(faulted, floors).items():
        out[f"fault_{key}"] = value
    # Worst per-tenant slowdown vs the fault-free QoS run — the
    # "contracts hold within tolerance" number the bench gates on.
    slowdowns = [
        f.completion_seconds / q.completion_seconds
        for f, q in zip(faulted.outcomes, qos.outcomes)
        if q.completion_seconds > 0
    ]
    out["fault_max_slowdown"] = float(max(slowdowns))
    out["fault_starved_tenants"] = float(
        sum(1 for o in faulted.outcomes if o.served_bytes <= 0)
    )
    return out


@dataclass
class QosResult:
    """Mean per-(N, mode) metrics plus the fault cross-check."""

    preset: Dict[str, float]
    n_samples: int
    tenant_counts: List[int]
    cells: Dict[int, Dict[str, Dict[str, float]]] = field(
        default_factory=dict
    )  # n_tenants -> mode prefix -> mean metrics
    fault_check: Dict[str, float] = field(default_factory=dict)

    def metric(self, n_tenants: int, mode: str, key: str) -> float:
        return self.cells[n_tenants][mode][key]

    @property
    def headline(self) -> Dict[str, Dict[str, float]]:
        """The largest-N cell — the committed gate numbers."""
        return self.cells[max(self.tenant_counts)]

    def render(self) -> str:
        rows = []
        for n in self.tenant_counts:
            for mode, prefix in (("adaptive", "base"),
                                 ("adaptive+qos", "qos")):
                c = self.cells[n][prefix]
                rows.append((
                    n,
                    mode,
                    c["victim_p99_seconds"],
                    c["jain_index"],
                    c["makespan_seconds"],
                    c["throttled_gb"],
                    int(c["errored_tenants"]),
                ))
        table = format_table(
            ["tenants", "mode", "victim p99 (s)", "Jain (floor-norm)",
             "makespan (s)", "throttled (GB)", "errored"],
            rows,
            title=(
                "Multi-tenant QoS — victim tail latency and fairness, "
                f"{int(self.preset['n_osts'])} OSTs, "
                f"{int(self.preset['victim_ranks'])} ranks/victim + "
                f"{int(self.preset['aggressor_ranks'])}-rank scavenger, "
                f"{self.preset['victim_mb']:.0f}/"
                f"{self.preset['aggressor_mb']:.0f} MB/proc"
            ),
        )
        if not self.fault_check:
            return table
        f = self.fault_check
        frows = [(
            f"{_FAULT_K} OST fail-stops",
            f["fault_victim_p99_seconds"],
            f["fault_jain_index"],
            f["fault_max_slowdown"],
            int(f["fault_starved_tenants"]),
            int(f["fault_errored_tenants"]),
        )]
        return table + "\n\n" + format_table(
            ["fault cell", "victim p99 (s)", "Jain", "max slowdown",
             "starved", "errored"],
            frows,
            title=(
                "QoS resilience cross-check — contracts under mid-run "
                f"OST failure (tolerance {_FAULT_SLOWDOWN_TOL:.1f}x)"
            ),
        )

    def failure_report(self) -> List[str]:
        """Cells violating the QoS contract story."""
        problems: List[str] = []
        for n in self.tenant_counts:
            base = self.cells[n]["base"]
            qos = self.cells[n]["qos"]
            # A tie is tolerated here (toy presets can saturate both
            # modes); the benchmark asserts strict improvement at the
            # gated scales.
            if qos["victim_p99_seconds"] > base["victim_p99_seconds"]:
                problems.append(
                    f"N={n}: QoS victim p99 "
                    f"{qos['victim_p99_seconds']:.3f}s worse than "
                    f"baseline {base['victim_p99_seconds']:.3f}s"
                )
            if qos["jain_index"] < base["jain_index"]:
                problems.append(
                    f"N={n}: QoS Jain {qos['jain_index']:.3f} below "
                    f"baseline {base['jain_index']:.3f}"
                )
            if qos["errored_tenants"] > 0:
                problems.append(
                    f"N={n}: {int(qos['errored_tenants'])} tenant(s) "
                    "errored under QoS — degradation must be graceful"
                )
        f = self.fault_check
        if f:
            if f["fault_starved_tenants"] > 0:
                problems.append(
                    f"fault cell: {int(f['fault_starved_tenants'])} "
                    "tenant(s) starved"
                )
            if f["fault_errored_tenants"] > 0:
                problems.append(
                    f"fault cell: {int(f['fault_errored_tenants'])} "
                    "tenant(s) errored (expected in-run recovery)"
                )
            if f["fault_max_slowdown"] > _FAULT_SLOWDOWN_TOL:
                problems.append(
                    "fault cell: max tenant slowdown "
                    f"{f['fault_max_slowdown']:.2f}x exceeds the "
                    f"{_FAULT_SLOWDOWN_TOL:.1f}x contract tolerance"
                )
        return problems

    def to_dict(self) -> Dict:
        head = self.headline
        return {
            "preset": {k: float(v) for k, v in self.preset.items()},
            "n_samples": self.n_samples,
            "tenant_counts": [int(n) for n in self.tenant_counts],
            # Gate metrics at top level (bench_report --gate qos.*):
            # the QoS mode's numbers from the largest-N cell, with the
            # baseline alongside for the ratio story.
            "jain_index": head["qos"]["jain_index"],
            "victim_p99_seconds": head["qos"]["victim_p99_seconds"],
            "baseline_jain_index": head["base"]["jain_index"],
            "baseline_victim_p99_seconds":
                head["base"]["victim_p99_seconds"],
            "cells": {
                str(n): {mode: dict(m) for mode, m in by_mode.items()}
                for n, by_mode in self.cells.items()
            },
            "fault_check": dict(self.fault_check),
        }


def run(scale: "Scale | str" = Scale.SMALL,
        base_seed: int = 0) -> QosResult:
    preset = resolve_preset(_PRESETS, scale)
    n_samples = n_samples_override(preset["samples"])
    tenant_counts = list(preset["tenant_counts"])
    result = QosResult(
        preset={
            k: float(v) for k, v in preset.items()
            if k not in ("samples", "tenant_counts")
        },
        n_samples=n_samples,
        tenant_counts=tenant_counts,
    )
    largest = max(tenant_counts)
    for n in tenant_counts:
        samples = run_samples(
            partial(
                _one_cell,
                n_tenants=n,
                n_osts=preset["n_osts"],
                cap=preset["cap"],
                victim_ranks=preset["victim_ranks"],
                victim_mb=preset["victim_mb"],
                aggressor_ranks=preset["aggressor_ranks"],
                aggressor_mb=preset["aggressor_mb"],
                with_faults_check=(n == largest),
            ),
            n_samples,
            base_seed,
            label=f"qos[N={n}]",
        )
        keys = samples[0].keys()
        means = {
            key: float(np.mean([s[key] for s in samples]))
            for key in keys
        }
        result.cells[n] = {
            "base": {
                k[len("base_"):]: v for k, v in means.items()
                if k.startswith("base_")
            },
            "qos": {
                k[len("qos_"):]: v for k, v in means.items()
                if k.startswith("qos_")
            },
        }
        fault = {k: v for k, v in means.items() if k.startswith("fault_")}
        if fault:
            result.fault_check = fault
    return result
