"""Figure 7 — standard deviation of write time, four panels.

"The graphs ... show the standard deviation of the write times for
each of the 4 cases measured [Pixie3D small/large/XL + XGC1].  Here,
the absolute numbers are less important than the fact that for all
cases, once the caches on the storage targets start to be taxed,
adaptive IO reduces variability."

The std is over repeated samples of the reported (write+flush+close)
time at each process count, per transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.apps.pixie3d import pixie3d
from repro.apps.xgc1 import xgc1
from repro.harness.experiment import Scale
from repro.harness.figures.appbench import SweepResult, sweep_app
from repro.harness.report import format_table

__all__ = ["run", "Fig7Result", "CASES"]

CASES = ("pixie3d.small", "pixie3d.large", "pixie3d.xl", "xgc1")


@dataclass
class Fig7Result:
    sweeps: Dict[str, SweepResult]
    condition: str = "base"

    def std_rows(self, case: str):
        sweep = self.sweeps[case]
        rows = []
        for n in sweep.config.proc_counts:
            rows.append(
                (
                    n,
                    sweep.time_std("mpiio", self.condition, n),
                    sweep.time_std("adaptive", self.condition, n),
                )
            )
        return rows

    def adaptive_less_variable_at_scale(self, case: str) -> bool:
        """The claim: at the largest process count (caches taxed),
        adaptive's write-time std is below MPI-IO's."""
        rows = self.std_rows(case)
        n, mpi_std, ad_std = rows[-1]
        return ad_std <= mpi_std

    def to_dict(self) -> Dict:
        """Machine-readable summary (JSON-safe scalars only)."""
        return {
            "condition": self.condition,
            "cases": {
                case: {
                    "std_rows": [
                        {
                            "n_procs": int(n),
                            "mpiio_std": float(mpi),
                            "adaptive_std": float(ad),
                        }
                        for n, mpi, ad in self.std_rows(case)
                    ],
                    "adaptive_less_variable_at_scale": (
                        self.adaptive_less_variable_at_scale(case)
                    ),
                }
                for case in self.sweeps
            },
        }

    def render(self) -> str:
        titles = {
            "pixie3d.small": "(a) Pixie3D Small",
            "pixie3d.large": "(b) Pixie3D Large",
            "pixie3d.xl": "(c) Pixie3D Extra Large",
            "xgc1": "(d) XGC1",
        }
        blocks = ["Fig. 7 — standard deviation of write time (s)"]
        for case in CASES:
            if case not in self.sweeps:
                continue
            blocks.append("")
            blocks.append(
                format_table(
                    ["procs", "MPI-IO std", "adaptive std"],
                    self.std_rows(case),
                    title=titles[case],
                )
            )
        return "\n".join(blocks)


def run(
    scale: "Scale | str" = Scale.SMALL,
    base_seed: int = 0,
    precomputed: Optional[Dict[str, SweepResult]] = None,
    cases=CASES,
) -> Fig7Result:
    """Build Fig. 7; pass ``precomputed`` sweeps (e.g. from fig5/fig6
    runs) to avoid redoing them."""
    sweeps: Dict[str, SweepResult] = dict(precomputed or {})
    factories = {
        "pixie3d.small": lambda: pixie3d("small"),
        "pixie3d.large": lambda: pixie3d("large"),
        "pixie3d.xl": lambda: pixie3d("xl"),
        "xgc1": xgc1,
    }
    for i, case in enumerate(cases):
        if case not in sweeps:
            sweeps[case] = sweep_app(factories[case], scale, base_seed + i)
    return Fig7Result(sweeps=sweeps)
