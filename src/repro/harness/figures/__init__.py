"""Per-artifact experiment definitions (one module per table/figure)."""

from repro.harness.figures import (  # noqa: F401
    fig1,
    fig2,
    fig3,
    fig5,
    fig6,
    fig7,
    table1,
)

__all__ = ["fig1", "fig2", "fig3", "fig5", "fig6", "fig7", "table1"]
