"""Shared engine for the Section-IV application benchmarks (Figs 5-7).

One sweep = {MPI-IO, adaptive} x {base, interference} x process
counts x samples, against a Jaguar-like machine:

* the MPI-IO transport writes one shared file capped at the Lustre
  stripe limit (160 on the real machine, scaled on smaller presets);
* adaptive uses its larger target set (512 of 672 in the paper);
* "base" runs under ambient production noise ("whatever other
  simultaneous jobs happen to be running");
* "interference" adds the paper's artificial program: 24 processes,
  three per OST, continuously writing 1 GB each over 8 targets.

Reported time is write + flush + close, open excluded — the paper's
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.apps.base import AppKernel
from repro.core.transports import AdaptiveTransport, MpiIoTransport
from repro.harness.experiment import (
    Scale,
    n_samples_override,
    resolve_preset,
    run_samples,
)
from repro.harness.report import format_table
from repro.interference import (
    BackgroundWriterJob,
    install_production_noise,
)
from repro.machines import jaguar
from repro.metrics.stats import summarize
from repro.units import GB

__all__ = ["SweepConfig", "SweepResult", "sweep_app", "preset_for"]

TRANSPORTS = ("mpiio", "adaptive")
CONDITIONS = ("base", "interference")


@dataclass(frozen=True)
class SweepConfig:
    """Machine/sweep sizing for one scale preset."""

    pool_osts: int
    adaptive_osts: int
    stripe_cap: int
    proc_counts: Tuple[int, ...]
    n_samples: int


_PRESETS: Dict[Scale, SweepConfig] = {
    Scale.SMOKE: SweepConfig(
        pool_osts=12, adaptive_osts=8, stripe_cap=4,
        proc_counts=(8, 32), n_samples=1,
    ),
    Scale.SMALL: SweepConfig(
        pool_osts=84, adaptive_osts=64, stripe_cap=20,
        proc_counts=(64, 256, 1024), n_samples=3,
    ),
    # Full machine, one cell: the paper's 672-OST pool at 8192 procs,
    # one sample per (transport, condition).  Proves the fabric sustains
    # a full-scale cell, not a statistics run.
    Scale.LARGE: SweepConfig(
        pool_osts=672, adaptive_osts=512, stripe_cap=160,
        proc_counts=(8192,), n_samples=1,
    ),
    Scale.PAPER: SweepConfig(
        pool_osts=672, adaptive_osts=512, stripe_cap=160,
        proc_counts=(512, 2048, 8192, 16384), n_samples=5,
    ),
    # Beyond-Jaguar projection: a ~5000-OST pool (the paper's Spider
    # deployment grown one order) with 64k writers.  Only feasible
    # because the batched protocol's cost scales with groups x OSTs,
    # not writers x writes.
    Scale.EXA: SweepConfig(
        pool_osts=5000, adaptive_osts=4096, stripe_cap=160,
        proc_counts=(65536,), n_samples=1,
    ),
}


def preset_for(scale: "Scale | str") -> SweepConfig:
    return resolve_preset(_PRESETS, scale)


@dataclass
class CellSample:
    """One run's summary."""

    reported_time: float
    bandwidth: float
    imbalance: float
    n_adaptive_writes: int


@dataclass
class SweepResult:
    app_name: str
    per_process_bytes: float
    config: SweepConfig
    cells: Dict[Tuple[str, str, int], List[CellSample]] = field(
        default_factory=dict
    )

    # -- accessors ---------------------------------------------------------
    def bandwidths(self, transport: str, condition: str, n: int):
        return [s.bandwidth for s in self.cells[(transport, condition, n)]]

    def times(self, transport: str, condition: str, n: int):
        return [
            s.reported_time for s in self.cells[(transport, condition, n)]
        ]

    def mean_bandwidth(self, transport: str, condition: str, n: int) -> float:
        return float(np.mean(self.bandwidths(transport, condition, n)))

    def max_bandwidth(self, transport: str, condition: str, n: int) -> float:
        return float(np.max(self.bandwidths(transport, condition, n)))

    def speedup(self, condition: str, n: int) -> float:
        """adaptive over MPI-IO, mean bandwidth."""
        return self.mean_bandwidth(
            "adaptive", condition, n
        ) / self.mean_bandwidth("mpiio", condition, n)

    def time_std(self, transport: str, condition: str, n: int) -> float:
        return summarize(self.times(transport, condition, n)).std

    def to_dict(self) -> Dict:
        """Machine-readable summary (JSON-safe scalars only)."""
        cells = []
        for (tname, cond, n), samples in sorted(self.cells.items()):
            cells.append(
                {
                    "transport": tname,
                    "condition": cond,
                    "n_procs": n,
                    "mean_bandwidth": self.mean_bandwidth(tname, cond, n),
                    "max_bandwidth": self.max_bandwidth(tname, cond, n),
                    "time_std": self.time_std(tname, cond, n),
                    "times": [float(s.reported_time) for s in samples],
                    "n_adaptive_writes": [
                        int(s.n_adaptive_writes) for s in samples
                    ],
                }
            )
        speedups = {
            f"{cond}@{n}": self.speedup(cond, n)
            for n in self.config.proc_counts
            for cond in CONDITIONS
            if ("adaptive", cond, n) in self.cells
            and ("mpiio", cond, n) in self.cells
        }
        return {
            "app": self.app_name,
            "per_process_bytes": float(self.per_process_bytes),
            "config": {
                "pool_osts": self.config.pool_osts,
                "adaptive_osts": self.config.adaptive_osts,
                "stripe_cap": self.config.stripe_cap,
                "proc_counts": list(self.config.proc_counts),
                "n_samples": self.config.n_samples,
            },
            "cells": cells,
            "speedups": speedups,
        }

    def render(self, title: str) -> str:
        rows = []
        for n in self.config.proc_counts:
            for cond in CONDITIONS:
                rows.append(
                    (
                        n,
                        cond,
                        self.mean_bandwidth("mpiio", cond, n) / 1e9,
                        self.max_bandwidth("mpiio", cond, n) / 1e9,
                        self.mean_bandwidth("adaptive", cond, n) / 1e9,
                        self.max_bandwidth("adaptive", cond, n) / 1e9,
                        self.speedup(cond, n),
                    )
                )
        return format_table(
            [
                "procs",
                "condition",
                "MPI avg GB/s",
                "MPI max",
                "adaptive avg GB/s",
                "adaptive max",
                "speedup",
            ],
            rows,
            title=title,
        )


def _run_cell(
    app: AppKernel,
    transport_name: str,
    condition: str,
    n_procs: int,
    seed: int,
    cfg: SweepConfig,
) -> CellSample:
    spec = jaguar(n_osts=cfg.pool_osts).with_overrides(
        max_stripe_count=cfg.stripe_cap
    )
    machine = spec.build(
        n_ranks=n_procs,
        seed=seed,
        extra_service_nodes=2 if condition == "interference" else 0,
    )
    install_production_noise(machine, live=True)
    if condition == "interference":
        job = BackgroundWriterJob(
            machine,
            n_osts=min(8, cfg.pool_osts),
            writers_per_ost=3,
            write_size=1.0 * GB,
        )
        job.start()
    if transport_name == "adaptive":
        transport = AdaptiveTransport(
            n_osts_used=min(cfg.adaptive_osts, n_procs)
        )
    else:
        transport = MpiIoTransport(build_index=False)
    res = transport.run(machine, app, output_name="out")
    return CellSample(
        reported_time=res.reported_time,
        bandwidth=res.aggregate_bandwidth,
        imbalance=res.imbalance_factor,
        n_adaptive_writes=res.n_adaptive_writes,
    )


def sweep_app(
    app_factory: Callable[[], AppKernel],
    scale: "Scale | str" = Scale.SMALL,
    base_seed: int = 0,
    conditions: Tuple[str, ...] = CONDITIONS,
) -> SweepResult:
    """Run the full transport x condition x scale sweep for one app."""
    cfg = preset_for(scale)
    n_eff = n_samples_override(cfg.n_samples)
    if n_eff != cfg.n_samples:
        cfg = replace(cfg, n_samples=n_eff)
    app = app_factory()
    result = SweepResult(
        app_name=app.name,
        per_process_bytes=app.per_process_bytes,
        config=cfg,
    )
    for n_procs in cfg.proc_counts:
        for cond in conditions:
            for tname in TRANSPORTS:
                # partial over the module-level cell runner keeps the
                # sample fn picklable for the parallel executor; the
                # derived seed arrives as the remaining positional arg.
                samples = run_samples(
                    partial(_run_cell, app, tname, cond, n_procs, cfg=cfg),
                    cfg.n_samples,
                    base_seed,
                    label=f"{app.name}[{tname},{cond},{n_procs}p]",
                )
                result.cells[(tname, cond, n_procs)] = samples
    return result
