"""Figure 2 — histograms of IO bandwidth under external interference.

Same data as Table I, shown as four bandwidth histograms: Jaguar,
Franklin, XTP with interference, XTP without.  The visual point the
paper makes: production systems (and XTP with a co-running job) show
wide, multi-modal spreads; XTP alone is a tight spike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.harness.experiment import Scale
from repro.harness.figures import table1 as _table1
from repro.metrics.histogram import Histogram, text_histogram

__all__ = ["run", "Fig2Result"]


@dataclass
class Fig2Result:
    histograms: Dict[str, Histogram]
    source: _table1.Table1Result

    def render(self) -> str:
        titles = {
            "jaguar": "(a) Jaguar/Lustre",
            "franklin": "(b) Franklin/Lustre",
            "xtp_with_int": "(c) XTP/PanFS (with Int.)",
            "xtp_without_int": "(d) XTP/PanFS (without Int.)",
        }
        blocks = ["Fig. 2 — IO bandwidth histograms (MB/s per bin)"]
        for cond in _table1.CONDITIONS:
            hist = self.histograms[cond]
            blocks.append("")
            blocks.append(titles[cond])
            blocks.extend(
                text_histogram(hist, label_fmt="{:9.0f}", unit=" MB/s")
            )
        return "\n".join(blocks)

    def relative_spread(self, condition: str) -> float:
        """Histogram width normalized by its mean: (highest occupied
        bin edge - lowest) / mean bandwidth.  Auto-ranged bins make
        every histogram fill its own axis, so the comparison must be
        on a common (relative-to-mean) scale."""
        h = self.histograms[condition]
        occupied = h.counts > 0
        centers = h.bin_centers()
        lo = float(centers[occupied].min())
        hi = float(centers[occupied].max())
        weights = h.counts / h.counts.sum()
        mean = float((centers * weights).sum())
        return (hi - lo) / mean if mean > 0 else float("inf")

    def to_dict(self) -> Dict:
        """Machine-readable summary (JSON-safe scalars only)."""
        return {
            "histograms": {
                cond: {
                    "edges": [float(e) for e in h.edges],
                    "counts": [int(c) for c in h.counts],
                    "relative_spread": self.relative_spread(cond),
                }
                for cond, h in self.histograms.items()
            },
            "source": self.source.to_dict(),
        }


def run(scale: "Scale | str" = Scale.SMALL, base_seed: int = 0) -> Fig2Result:
    source = _table1.run(scale, base_seed)
    histograms = {
        cond: Histogram.of(
            [b / 1e6 for b in source.bandwidths[cond]], n_bins=12
        )
        for cond in _table1.CONDITIONS
    }
    return Fig2Result(histograms=histograms, source=source)
