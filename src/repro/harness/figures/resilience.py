"""Resilience sweep — goodput under injected storage-target failures.

The paper's adaptive method reacts to *slow* targets; the fault
subsystem extends it to react to *dead* ones.  This sweep quantifies
that: fail ``k`` of the pool's OSTs mid-write (at ~40% of each
method's own fault-free write time) and compare methods on

* **goodput** — application bytes per second until a *complete*
  durable output exists.  A partial checkpoint has no restart value,
  so a static method whose attempt loses an OST's worth of data pays
  for a full re-run on the surviving targets (failed-attempt time
  included), exactly as an application-level retry loop would.  The
  adaptive method recovers *within* the run — relocating the affected
  sub-files onto healthy targets and re-driving the affected writers
  — so its recovery cost is only the rewritten fraction;
* **durability** — fraction of application bytes the *first* attempt
  landed (100% for a method that recovers in-run).

The static methods (stripe-aligned MPI-IO, split files) have no
recovery path: writers targeting a failed OST record a defined
failure and the run reports partial output via
:class:`~repro.errors.TransportError`.

All cells run under live production noise (the paper's operating
regime); each sample derives its own seed and builds its own machine,
so the sweep fans out over worker processes bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List

import numpy as np

from repro.harness.experiment import (
    Scale,
    n_samples_override,
    resolve_preset,
    run_samples,
)
from repro.harness.report import format_table

__all__ = ["run", "ResilienceResult", "K_FAILED", "METHODS"]

# Pool/cap keep Jaguar's shape (672 targets, 160-stripe cap ≈ 4.2:1):
# the stripe-capped single file cannot reach the whole pool, which is
# the internal-interference regime the paper's comparison runs in.
_PRESETS = {
    Scale.SMOKE: dict(n_osts=16, cap=4, n_ranks=64, mb=16.0, samples=1),
    Scale.SMALL: dict(n_osts=32, cap=8, n_ranks=128, mb=32.0, samples=3),
    Scale.PAPER: dict(n_osts=672, cap=160, n_ranks=2048, mb=128.0,
                      samples=3),
}

#: Storage targets failed mid-write in each sweep column.
K_FAILED = (0, 1, 2, 4)

#: IO methods compared (adaptive + the static baselines).
METHODS = ("adaptive", "mpiio", "splitfiles")


def _make_transport(method: str):
    from repro.core.transports import (
        AdaptiveTransport,
        MpiIoTransport,
        SplitFilesTransport,
    )

    if method == "mpiio":
        return MpiIoTransport(build_index=False)
    if method == "splitfiles":
        return SplitFilesTransport(build_index=False)
    return AdaptiveTransport()


def _app(mb: float):
    from repro.apps import AppKernel, Variable
    from repro.units import MB

    return AppKernel(
        "resil", [Variable("v", shape=(int(mb * MB / 8),))]
    )


def _one_cell(seed: int, method: str, k: int, n_osts: int, cap: int,
              n_ranks: int, mb: float) -> Dict[str, float]:
    """One (method, k-failures) sample; returns JSON-safe scalars."""
    from repro.errors import TransportError
    from repro.faults import FaultEvent, FaultPlan, with_faults
    from repro.interference import install_production_noise
    from repro.machines import jaguar

    spec = jaguar(n_osts=n_osts).with_overrides(max_stripe_count=cap)
    app = _app(mb)
    transport = _make_transport(method)

    # Fault-free run: the method's own write time sizes the mid-write
    # failure instant, so every method is hit at the same *fraction*
    # of its output (not the same wall instant).
    m0 = spec.build(n_ranks=n_ranks, seed=seed)
    install_production_noise(m0, live=True)
    base = transport.run(m0, app, output_name="resil")
    if k == 0:
        return {
            "goodput": base.total_bytes / base.reported_time,
            "bandwidth": base.aggregate_bandwidth,
            "durable_frac": 1.0,
            "completed": 1.0,
            "reported_time": base.reported_time,
        }

    fail_at = max(0.4 * base.write_time, 1e-3)
    # Failures spread evenly over the pool (uncorrelated target deaths,
    # not a correlated enclosure loss).
    plan = FaultPlan(
        events=tuple(
            FaultEvent(
                time=fail_at, kind="ost_fail",
                target=(i * n_osts) // k,
            )
            for i in range(k)
        )
    ).with_policy(run_timeout=max(120.0, 50.0 * base.reported_time))
    with with_faults(plan):
        m = spec.build(n_ranks=n_ranks, seed=seed)
        install_production_noise(m, live=True)
        try:
            res = transport.run(m, app, output_name="resil")
            durable = res.extra.get("bytes_durable", res.total_bytes)
            reported = res.reported_time
            completed = 1.0
        except TransportError as exc:
            durable = exc.bytes_durable
            p = exc.partial
            reported = (
                p.reported_time
                if p is not None and p.reported_time > 0
                else m.env.now
            )
            completed = 0.0
    total = app.per_process_bytes * n_ranks
    first_frac = durable / total
    time_to_complete = reported
    if completed == 0.0:
        # The attempt left a hole; the application's retry loop must
        # redo the whole output.  Model the re-run on the surviving
        # pool (the operator deactivates the dead targets), charging
        # the wasted first attempt to the clock.
        spec2 = jaguar(n_osts=n_osts - k).with_overrides(
            max_stripe_count=cap
        )
        m2 = spec2.build(n_ranks=n_ranks, seed=seed)
        install_production_noise(m2, live=True)
        redo = transport.run(m2, app, output_name="resil")
        time_to_complete = reported + redo.reported_time
    return {
        "goodput": total / time_to_complete if time_to_complete > 0
        else 0.0,
        "bandwidth": total / reported if reported > 0 else 0.0,
        "durable_frac": first_frac,
        "completed": completed,
        "reported_time": time_to_complete,
    }


def _integrity_cell(seed: int, method: str, n_osts: int, cap: int,
                    n_ranks: int, mb: float) -> Dict[str, float]:
    """One integrity sample: detection rates + checksum overhead.

    Three runs per sample: a checksummed fault-free run (scrubbed for
    false positives, and timing the scrub), a checksum-free fault-free
    run (the overhead baseline), and a checksummed run under a
    corruption plan (bitflips, a torn write, a stale index) whose
    scrub must detect every injected defect.
    """
    from repro.apps import AppKernel, Variable
    from repro.core.bp import BpReader
    from repro.core.integrity import detection_stats
    from repro.core.transports import (
        AdaptiveTransport,
        MpiIoTransport,
        SplitFilesTransport,
    )
    from repro.errors import TransportError
    from repro.faults import FaultEvent, FaultPlan, with_faults
    from repro.interference import install_production_noise
    from repro.machines import jaguar
    from repro.units import MB

    def transport():
        # Unlike the goodput cells these need the global index built,
        # so the scrub has entries to verify against.
        if method == "mpiio":
            return MpiIoTransport()
        if method == "splitfiles":
            return SplitFilesTransport()
        return AdaptiveTransport()

    def app(checksums: bool):
        return AppKernel(
            "resil", [Variable("v", shape=(int(mb * MB / 8),))],
            checksums=checksums,
        )

    spec = jaguar(n_osts=n_osts).with_overrides(max_stripe_count=cap)

    # Checksummed fault-free run: overhead numerator + clean scrub.
    m0 = spec.build(n_ranks=n_ranks, seed=seed)
    install_production_noise(m0, live=True)
    base = transport().run(m0, app(True), output_name="resil")
    reader0 = BpReader(m0.fs, index=base.index, files=base.files)
    clean = detection_stats(reader0.scrub(), m0.fs, base.index)

    # Checksum-free fault-free run: the overhead denominator.
    m1 = spec.build(n_ranks=n_ranks, seed=seed)
    install_production_noise(m1, live=True)
    plain = transport().run(m1, app(False), output_name="resil")
    overhead_pct = (
        100.0 * (base.reported_time - plain.reported_time)
        / plain.reported_time
    )

    # Corruption run.  Adaptive serializes writers so blocks exist
    # mid-phase; the statics register blocks only at write completion,
    # so their corruption lands just after the write phase.
    if method == "adaptive":
        at = max(0.5 * base.write_time, 1e-3)
    else:
        at = (base.open_time + base.write_time
              + max(0.25 * base.flush_time, 1e-3))
    # Low-numbered targets so even the stripe-capped shared file
    # (which touches only ``cap`` targets) is hit by all three kinds.
    plan = FaultPlan(
        events=(
            FaultEvent(time=at, kind="block_bitflip", target=0, factor=2),
            FaultEvent(time=at, kind="torn_write", target=1, factor=0.5),
            FaultEvent(time=at, kind="stale_index", target=2, factor=1),
        ),
    ).with_policy(run_timeout=max(120.0, 50.0 * base.reported_time))
    with with_faults(plan):
        m2 = spec.build(n_ranks=n_ranks, seed=seed)
        install_production_noise(m2, live=True)
        try:
            res = transport().run(m2, app(True), output_name="resil")
        except TransportError as exc:
            # The statics flag corrupt bytes at finalize; the partial
            # result still carries the index and file list to scrub.
            res = exc.partial
    reader = BpReader(m2.fs, index=res.index, files=res.files)
    proc = m2.env.process(reader.scrub_sim(0), name="resil.scrub")
    m2.env.run(until=proc)
    report, scrub_seconds = proc.value
    det = detection_stats(report, m2.fs, res.index)
    return {
        "truth": float(det["truth"]),
        "detected": float(det["detected"]),
        "undetected": float(det["undetected"]),
        "false_positives": float(det["false_positives"]),
        "fp_clean": float(clean["false_positives"]),
        "overhead_pct": overhead_pct,
        "scrub_seconds": scrub_seconds,
    }


@dataclass
class ResilienceResult:
    """Mean goodput/durability per (method, failure count)."""

    preset: Dict[str, float]
    n_samples: int
    cells: Dict[str, Dict[int, Dict[str, float]]] = field(
        default_factory=dict
    )  # method -> k -> mean metrics
    integrity: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )  # method -> mean detection/overhead metrics

    def goodput(self, method: str, k: int) -> float:
        return self.cells[method][k]["goodput"]

    def durable_frac(self, method: str, k: int) -> float:
        return self.cells[method][k]["durable_frac"]

    def render(self) -> str:
        rows = []
        for method in METHODS:
            for k in K_FAILED:
                c = self.cells[method][k]
                rows.append((
                    method,
                    k,
                    c["goodput"] / 1e6,
                    100.0 * c["durable_frac"],
                    c["completed"] * 100.0,
                    c["reported_time"],
                ))
        table = format_table(
            ["method", "OSTs failed", "goodput (MB/s)", "durable %",
             "runs clean %", "t_complete (s)"],
            rows,
            title=(
                "Resilience — goodput under mid-write OST fail-stop "
                f"({int(self.preset['n_ranks'])} writers, "
                f"{int(self.preset['n_osts'])} OSTs, "
                f"stripe cap {int(self.preset['cap'])}, "
                f"{self.preset['mb']:.0f} MB/proc, production noise)"
            ),
        )
        if not self.integrity:
            return table
        irows = [
            (
                method,
                int(c["truth"]),
                int(c["detected"]),
                int(c["undetected"]),
                int(c["false_positives"] + c["fp_clean"]),
                c["overhead_pct"],
                c["scrub_seconds"],
            )
            for method, c in self.integrity.items()
        ]
        return table + "\n\n" + format_table(
            ["method", "corrupt blocks", "detected", "undetected",
             "false pos", "cksum overhead %", "scrub (s)"],
            irows,
            title=(
                "Integrity — scrub detection under injected corruption "
                "(bitflip x2, torn write, stale index) and checksum "
                "overhead vs a checksum-free run"
            ),
        )

    def failure_report(self) -> List[str]:
        """Cells whose absorbed ``TransportError`` partials are *not*
        part of the experiment's design.

        The statics are expected to abort when targets die (that is
        the comparison); what must never happen silently is an
        incomplete run with **zero** failures injected (k=0), or the
        adaptive method — whose whole claim is in-run recovery —
        failing to produce a complete output at any k.  The experiment
        CLI turns these into a nonzero exit status.
        """
        problems: List[str] = []
        for method, by_k in self.cells.items():
            for k, cell in by_k.items():
                clean = cell.get("completed", 1.0)
                if clean >= 1.0:
                    continue
                if k == 0:
                    problems.append(
                        f"{method} @ k=0 absorbed an aborted partial "
                        f"result ({100 * clean:.0f}% of runs clean) "
                        "with no faults injected"
                    )
                elif method == "adaptive":
                    problems.append(
                        f"adaptive @ k={k} failed to recover in-run "
                        f"({100 * clean:.0f}% of runs clean; durable "
                        f"{100 * cell.get('durable_frac', 0.0):.1f}%)"
                    )
        return problems

    def to_dict(self) -> Dict:
        return {
            "preset": {k: float(v) for k, v in self.preset.items()},
            "n_samples": self.n_samples,
            "k_failed": list(K_FAILED),
            "cells": {
                method: {
                    str(k): dict(metrics) for k, metrics in by_k.items()
                }
                for method, by_k in self.cells.items()
            },
            "integrity": {
                method: dict(metrics)
                for method, metrics in self.integrity.items()
            },
        }


def run(scale: "Scale | str" = Scale.SMALL,
        base_seed: int = 0) -> ResilienceResult:
    preset = resolve_preset(_PRESETS, scale)
    n_samples = n_samples_override(preset["samples"])
    result = ResilienceResult(
        preset={k: float(v) for k, v in preset.items() if k != "samples"},
        n_samples=n_samples,
    )
    for method in METHODS:
        result.cells[method] = {}
        for k in K_FAILED:
            samples = run_samples(
                partial(
                    _one_cell,
                    method=method,
                    k=k,
                    n_osts=preset["n_osts"],
                    cap=preset["cap"],
                    n_ranks=preset["n_ranks"],
                    mb=preset["mb"],
                ),
                n_samples,
                base_seed,
                label=f"resilience[{method},k={k}]",
            )
            keys = samples[0].keys()
            result.cells[method][k] = {
                key: float(np.mean([s[key] for s in samples]))
                for key in keys
            }
    for method in METHODS:
        samples = run_samples(
            partial(
                _integrity_cell,
                method=method,
                n_osts=preset["n_osts"],
                cap=preset["cap"],
                n_ranks=preset["n_ranks"],
                mb=preset["mb"],
            ),
            n_samples,
            base_seed,
            label=f"resilience.integrity[{method}]",
        )
        keys = samples[0].keys()
        result.integrity[method] = {
            key: float(np.mean([s[key] for s in samples]))
            for key in keys
        }
    return result
