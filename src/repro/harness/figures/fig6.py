"""Figure 6 — XGC1 IO performance (38 MB/process).

"Adaptive IO shows clear advantages ... the performance improvement
ranges from 30% to greater than 224%."  Sizewise XGC1 sits between
Pixie3D's small and large models, and so does its benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.xgc1 import xgc1
from repro.harness.experiment import Scale
from repro.harness.figures.appbench import SweepResult, sweep_app

__all__ = ["run", "Fig6Result"]


@dataclass
class Fig6Result:
    sweep: SweepResult

    def render(self) -> str:
        return self.sweep.render(
            "Fig. 6 — XGC1 IO performance (38 MB/process)"
        )

    def min_improvement_percent(self) -> float:
        """Smallest adaptive-over-MPI improvement across the sweep."""
        speedups = [
            self.sweep.speedup(cond, n)
            for n in self.sweep.config.proc_counts
            for cond in ("base", "interference")
        ]
        return (min(speedups) - 1.0) * 100.0

    def to_dict(self) -> dict:
        """Machine-readable summary (JSON-safe scalars only)."""
        return {
            "sweep": self.sweep.to_dict(),
            "min_improvement_percent": self.min_improvement_percent(),
        }


def run(scale: "Scale | str" = Scale.SMALL, base_seed: int = 0) -> Fig6Result:
    return Fig6Result(sweep=sweep_app(xgc1, scale, base_seed))
