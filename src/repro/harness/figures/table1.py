"""Table I — IO performance variability due to external interference.

Paper setup: hourly IOR probes (512 writers POSIX, one file per
writer, one process per storage target) over weeks of production
operation — 469 samples on Jaguar; ~2 years of NERSC monitoring data
for Franklin (80 writers); and two controlled XTP configurations: a
single 512-writer IOR ("without Int.") vs two simultaneous IOR jobs
("with Int.").

Reported: sample count, average bandwidth, standard deviation and
"covariance" (CoV).  Paper values: Jaguar ~40%, Franklin ~59%,
XTP with Int. ~43%, XTP without Int. small.

Each hourly probe sees the production-noise Markov field at an
independent stationary draw (an hour >> the chains' dwell times), so
samples here are independent machines with frozen stationary noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List

import numpy as np

from repro.harness.experiment import (
    Scale,
    n_samples_override,
    resolve_preset,
    run_samples,
)
from repro.harness.report import format_table
from repro.interference import (
    BackgroundWriterJob,
    install_production_noise,
)
from repro.ior import IorConfig, run_ior
from repro.machines import franklin, jaguar, xtp
from repro.metrics.stats import SampleStats, summarize
from repro.units import MB

__all__ = ["run", "Table1Result", "CONDITIONS"]

_PRESETS = {
    Scale.SMOKE: dict(n_samples=4, jaguar_osts=16, franklin_osts=16),
    Scale.SMALL: dict(n_samples=40, jaguar_osts=96, franklin_osts=96),
    Scale.PAPER: dict(n_samples=469, jaguar_osts=512, franklin_osts=96),
}

CONDITIONS = (
    "jaguar",
    "franklin",
    "xtp_with_int",
    "xtp_without_int",
)


@dataclass
class Table1Result:
    bandwidths: Dict[str, List[float]] = field(default_factory=dict)

    def stats(self, condition: str) -> SampleStats:
        return summarize(self.bandwidths[condition])

    def cov_percent(self, condition: str) -> float:
        return self.stats(condition).cov_percent

    def render(self) -> str:
        label = {
            "jaguar": "Jaguar",
            "franklin": "Franklin",
            "xtp_with_int": "XTP (with Int.)",
            "xtp_without_int": "XTP (without Int.)",
        }
        rows = []
        for cond in CONDITIONS:
            s = self.stats(cond)
            rows.append(
                (
                    label[cond],
                    s.n,
                    s.mean / 1e6,
                    s.std / 1e6,
                    f"{s.cov_percent:.0f}%",
                )
            )
        return format_table(
            ["Machine", "Samples", "Avg BW (MB/s)", "Std Dev", "CoV"],
            rows,
            title="Table I — IO variability due to external interference",
        )

    def to_dict(self) -> Dict:
        """Machine-readable summary (JSON-safe scalars only)."""
        out: Dict[str, Dict] = {}
        for cond in CONDITIONS:
            if cond not in self.bandwidths:
                continue
            s = self.stats(cond)
            out[cond] = {
                "n": s.n,
                "mean": s.mean,
                "std": s.std,
                "cov_percent": s.cov_percent,
                "samples": [float(b) for b in self.bandwidths[cond]],
            }
        return {"conditions": out}


def _probe_jaguar(seed: int, n_osts: int) -> float:
    machine = jaguar(n_osts=n_osts).build(n_ranks=n_osts, seed=seed)
    install_production_noise(machine, live=False)
    res = run_ior(
        machine,
        IorConfig(n_writers=n_osts, block_size=512 * MB, api="posix",
                  n_osts_used=n_osts),
    )
    return res.write_bandwidth


def _probe_franklin(seed: int, n_osts: int) -> float:
    # NERSC's recurring test uses 80 writers on the 96-OST system.
    n_writers = min(80, n_osts)
    machine = franklin(n_osts=n_osts).build(n_ranks=n_writers, seed=seed)
    install_production_noise(machine, live=False)
    res = run_ior(
        machine,
        IorConfig(n_writers=n_writers, block_size=512 * MB, api="posix",
                  n_osts_used=n_osts),
    )
    return res.write_bandwidth


def _probe_xtp(seed: int, with_interference: bool) -> float:
    """One controlled XTP probe.

    "with Int." races a second IOR program against the probe: an
    identical one-shot writer population, launched at a random phase
    within the probe window and with a jittered block size.  How much
    of the probe it overlaps varies sample to sample — the mechanism
    behind the paper's 43% CoV on a machine with almost no ambient
    noise.
    """
    n_writers = 480  # 512 in the paper; 480 = 40 blades x 12 fits XTP
    machine = xtp().build(
        n_ranks=n_writers, seed=seed, extra_service_nodes=40
    )
    install_production_noise(machine, live=False)  # mild ambient
    if with_interference:
        rng = machine.rngs.get("xtp.second_job")
        start_delay = float(rng.uniform(0.0, 4.0))
        block = float(rng.uniform(0.5, 2.0)) * 128 * MB
        env = machine.env
        fabric = machine.fs.fabric

        def second_job():
            yield env.timeout(start_delay)
            flows = [
                fabric.start_flow(
                    machine.service_node(i % machine.n_service_nodes),
                    i % machine.n_osts,
                    block,
                )
                for i in range(n_writers)
            ]
            yield env.all_of(flows)

        env.process(second_job(), name="xtp.job2")
    res = run_ior(
        machine,
        IorConfig(n_writers=n_writers, block_size=128 * MB, api="posix",
                  n_osts_used=40),
    )
    return res.write_bandwidth


def run(scale: "Scale | str" = Scale.SMALL, base_seed: int = 0) -> Table1Result:
    preset = resolve_preset(_PRESETS, scale)
    n = n_samples_override(preset["n_samples"])
    result = Table1Result()
    result.bandwidths["jaguar"] = run_samples(
        partial(_probe_jaguar, n_osts=preset["jaguar_osts"]), n, base_seed,
        label="table1[jaguar]",
    )
    result.bandwidths["franklin"] = run_samples(
        partial(_probe_franklin, n_osts=preset["franklin_osts"]),
        n,
        base_seed + 1,
        label="table1[franklin]",
    )
    xtp_n = max(4, n // 4)  # XTP was probed less often in the paper too
    result.bandwidths["xtp_with_int"] = run_samples(
        partial(_probe_xtp, with_interference=True), xtp_n, base_seed + 2,
        label="table1[xtp+int]",
    )
    result.bandwidths["xtp_without_int"] = run_samples(
        partial(_probe_xtp, with_interference=False), xtp_n, base_seed + 3,
        label="table1[xtp-int]",
    )
    return result
