"""Figure 1 — internal interference: IOR scaling on Jaguar/Lustre.

Paper setup: IOR POSIX, 512 OSTs, one file per writer, writers split
evenly across targets; writers-per-OST ratio 1..32; per-writer sizes
1 MB..1024 MB, weak scaling; 40 samples per cell; a quiet system (no
production noise) — the interference is *internal*.

Fig. 1(a) plots aggregate write bandwidth; Fig. 1(b) per-writer write
bandwidth.  Both come from one sweep here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Tuple

import numpy as np

from repro.harness.experiment import (
    Scale,
    n_samples_override,
    resolve_preset,
    run_samples,
)
from repro.harness.report import format_table
from repro.interference import install_production_noise
from repro.interference.markov import global_chain, per_ost_chain
from repro.interference.production import NoisePreset
from repro.ior import IorConfig, run_ior
from repro.machines import jaguar
from repro.metrics.stats import summarize
from repro.units import MB

__all__ = ["run", "Fig1Result"]

_PRESETS = {
    Scale.SMOKE: dict(
        n_osts=8, ratios=(1, 2, 4), sizes_mb=(1, 8), n_samples=1
    ),
    Scale.SMALL: dict(
        n_osts=64,
        ratios=(1, 2, 4, 8, 16, 32),
        sizes_mb=(1, 8, 128),
        n_samples=3,
    ),
    # Full-machine validation: every OST Jaguar's scratch filesystem
    # had, one high-churn cell (12 writers/OST -> 8064 writers), one
    # sample.  Exists to prove a full-scale cell *completes* in
    # tractable wall time, not to tighten Fig. 1's error bars.
    Scale.LARGE: dict(
        n_osts=672, ratios=(12,), sizes_mb=(8,), n_samples=1
    ),
    Scale.PAPER: dict(
        n_osts=512,
        ratios=(1, 2, 4, 8, 16, 32),
        sizes_mb=(1, 8, 64, 128, 512, 1024),
        n_samples=40,
    ),
}


@dataclass
class Fig1Result:
    """Sweep output: cell -> (aggregate, per-writer) bandwidth stats."""

    n_osts: int
    ratios: Tuple[int, ...]
    sizes_mb: Tuple[int, ...]
    # (size_mb, n_writers) -> list of aggregate bandwidths (bytes/s)
    aggregate: Dict[Tuple[int, int], List[float]] = field(
        default_factory=dict
    )
    per_writer: Dict[Tuple[int, int], List[float]] = field(
        default_factory=dict
    )

    def aggregate_stats(self, size_mb: int, n_writers: int):
        return summarize(self.aggregate[(size_mb, n_writers)])

    def per_writer_stats(self, size_mb: int, n_writers: int):
        return summarize(self.per_writer[(size_mb, n_writers)])

    def render(self) -> str:
        rows = []
        for size in self.sizes_mb:
            for ratio in self.ratios:
                n = ratio * self.n_osts
                agg = self.aggregate_stats(size, n)
                per = self.per_writer_stats(size, n)
                rows.append(
                    (
                        size,
                        n,
                        ratio,
                        agg.mean / 1e9,
                        agg.minimum / 1e9,
                        agg.maximum / 1e9,
                        per.mean / 1e6,
                    )
                )
        return format_table(
            [
                "MB/writer",
                "writers",
                "w/OST",
                "agg GB/s",
                "min",
                "max",
                "per-writer MB/s",
            ],
            rows,
            title=(
                f"Fig. 1 — internal interference "
                f"(IOR POSIX, {self.n_osts} OSTs, quiet system)"
            ),
        )

    # -- shape assertions the paper's text makes --------------------------
    def per_writer_monotone_decline(self, size_mb: int) -> bool:
        """Fig 1(b): per-writer bandwidth falls as writers increase."""
        means = [
            self.per_writer_stats(size_mb, r * self.n_osts).mean
            for r in self.ratios
        ]
        return all(b < a * 1.02 for a, b in zip(means, means[1:]))

    def aggregate_eventually_declines(self, size_mb: int) -> bool:
        """Fig 1(a): aggregate bandwidth peaks then decreases."""
        means = [
            self.aggregate_stats(size_mb, r * self.n_osts).mean
            for r in self.ratios
        ]
        peak = int(np.argmax(means))
        return peak < len(means) - 1 and means[-1] < means[peak]

    def to_dict(self) -> Dict:
        """Machine-readable summary (JSON-safe scalars only)."""
        cells = []
        for size in self.sizes_mb:
            for ratio in self.ratios:
                n = ratio * self.n_osts
                agg = self.aggregate_stats(size, n)
                per = self.per_writer_stats(size, n)
                cells.append(
                    {
                        "size_mb": size,
                        "n_writers": n,
                        "writers_per_ost": ratio,
                        "aggregate_mean": agg.mean,
                        "aggregate_std": agg.std,
                        "aggregate_min": agg.minimum,
                        "aggregate_max": agg.maximum,
                        "per_writer_mean": per.mean,
                        "per_writer_std": per.std,
                        "samples": list(self.aggregate[(size, n)]),
                    }
                )
        return {
            "n_osts": self.n_osts,
            "ratios": list(self.ratios),
            "sizes_mb": list(self.sizes_mb),
            "cells": cells,
        }


def _one_cell(n_writers: int, size_mb: int, n_osts: int, seed: int) -> Tuple:
    """One seeded IOR run for one (size, writer-count) cell.

    Module-level so the parallel executor can pickle a partial of it.
    """
    machine = jaguar(n_osts=n_osts).build(n_ranks=n_writers, seed=seed)
    # The paper's probes ran on the production machine at relatively
    # quiet times — mild ambient load supplies Fig. 1's error bars
    # without drowning the internal-interference signal.
    install_production_noise(
        machine,
        preset=NoisePreset(per_ost_chain(), global_chain(), intensity=0.25),
        live=False,
    )
    res = run_ior(
        machine,
        IorConfig(
            n_writers=n_writers,
            block_size=size_mb * MB,
            api="posix",
            n_osts_used=n_osts,
        ),
    )
    return (
        res.write_bandwidth,
        float(res.per_writer_bandwidths.mean()),
    )


def run(scale: "Scale | str" = Scale.SMALL, base_seed: int = 0) -> Fig1Result:
    """Run the Fig. 1 sweep at the given scale preset."""
    preset = resolve_preset(_PRESETS, scale)
    n_osts = preset["n_osts"]
    n_samples = n_samples_override(preset["n_samples"])
    result = Fig1Result(
        n_osts=n_osts,
        ratios=tuple(preset["ratios"]),
        sizes_mb=tuple(preset["sizes_mb"]),
    )
    for size_mb in result.sizes_mb:
        for ratio in result.ratios:
            n_writers = ratio * n_osts
            samples = run_samples(
                partial(_one_cell, n_writers, size_mb, n_osts),
                n_samples,
                base_seed,
                label=f"fig1[{size_mb}MB,{n_writers}w]",
            )
            result.aggregate[(size_mb, n_writers)] = [s[0] for s in samples]
            result.per_writer[(size_mb, n_writers)] = [s[1] for s in samples]
    return result
