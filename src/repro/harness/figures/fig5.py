"""Figure 5 — Pixie3D IO performance, three data models.

Paper headline numbers this module's shape checks target:

* (a) small, 2 MB/process: adaptive ~10% better at scale (base);
  3%-35% better under interference;
* (b) large, 128 MB/process: 1% -> >350% better (base), 62% -> >430%
  (interference);
* (c) extra large, 1 GB/process: ~4.8x faster overall, consistently
  >300% once processes outnumber storage targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps.pixie3d import pixie3d
from repro.harness.experiment import Scale
from repro.harness.figures.appbench import SweepResult, sweep_app

__all__ = ["run", "Fig5Result", "MODELS"]

MODELS = ("small", "large", "xl")


@dataclass
class Fig5Result:
    panels: Dict[str, SweepResult]

    def render(self) -> str:
        titles = {
            "small": "Fig. 5(a) — Pixie3D small (2 MB/process)",
            "large": "Fig. 5(b) — Pixie3D large (128 MB/process)",
            "xl": "Fig. 5(c) — Pixie3D extra large (1 GB/process)",
        }
        return "\n\n".join(
            self.panels[m].render(titles[m]) for m in MODELS
        )

    def headline_speedup(self, model: str = "xl") -> float:
        """Adaptive/MPI-IO at the largest process count, base case."""
        sweep = self.panels[model]
        n = sweep.config.proc_counts[-1]
        return sweep.speedup("base", n)

    def to_dict(self) -> Dict:
        """Machine-readable summary (JSON-safe scalars only)."""
        return {
            "panels": {m: s.to_dict() for m, s in self.panels.items()},
            "headline_speedups": {
                m: self.headline_speedup(m) for m in self.panels
            },
        }


def run(
    scale: "Scale | str" = Scale.SMALL,
    base_seed: int = 0,
    models=MODELS,
) -> Fig5Result:
    panels = {
        model: sweep_app(
            lambda _m=model: pixie3d(_m), scale, base_seed + i
        )
        for i, model in enumerate(models)
    }
    return Fig5Result(panels=panels)
