"""Figure 3 — imbalanced concurrent writers (transient interference).

Paper setup: two external-interference samples of the 128 MB-per-
process Jaguar IOR test, taken three minutes apart.  Test 1 shows an
imbalance factor (slowest/fastest writer time) of 3.44; Test 2, run
180 s later, only 1.22 — the interference is transient.  Across all
their tests the average imbalance factor is 4.07.

Here both probes run inside ONE live simulation (the Markov field
evolves between them), so the pair genuinely samples the same system
three minutes apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List

import numpy as np

from repro.harness.experiment import (
    Scale,
    n_samples_override,
    resolve_preset,
    run_samples,
)
from repro.harness.report import format_table
from repro.interference import install_production_noise
from repro.ior import IorConfig, run_ior
from repro.machines import jaguar
from repro.metrics.timeline import WriterTimeline
from repro.units import MB

__all__ = ["run", "Fig3Result"]

_PRESETS = {
    Scale.SMOKE: dict(n_osts=16, n_pairs=1),
    Scale.SMALL: dict(n_osts=96, n_pairs=8),
    Scale.PAPER: dict(n_osts=512, n_pairs=30),
}


@dataclass
class Fig3Result:
    test1: WriterTimeline
    test2: WriterTimeline
    all_imbalance_factors: List[float] = field(default_factory=list)

    @property
    def imbalance_test1(self) -> float:
        return self.test1.imbalance_factor

    @property
    def imbalance_test2(self) -> float:
        return self.test2.imbalance_factor

    @property
    def mean_imbalance(self) -> float:
        return float(np.mean(self.all_imbalance_factors))

    def render(self) -> str:
        rows = [
            ("Test 1", self.test1.n_writers, self.test1.fastest,
             self.test1.slowest, self.imbalance_test1),
            ("Test 2 (+3 min)", self.test2.n_writers, self.test2.fastest,
             self.test2.slowest, self.imbalance_test2),
        ]
        table = format_table(
            ["Sample", "writers", "fastest (s)", "slowest (s)",
             "imbalance"],
            rows,
            title="Fig. 3 — imbalanced concurrent writers (128 MB/proc)",
        )
        return (
            table
            + f"\n\nMean imbalance factor over "
            f"{len(self.all_imbalance_factors)} samples: "
            f"{self.mean_imbalance:.2f} (paper: 4.07)"
        )

    def to_dict(self) -> Dict:
        """Machine-readable summary (JSON-safe scalars only)."""
        return {
            "test1": {
                "n_writers": self.test1.n_writers,
                "fastest": self.test1.fastest,
                "slowest": self.test1.slowest,
                "imbalance": self.imbalance_test1,
            },
            "test2": {
                "n_writers": self.test2.n_writers,
                "fastest": self.test2.fastest,
                "slowest": self.test2.slowest,
                "imbalance": self.imbalance_test2,
            },
            "mean_imbalance": self.mean_imbalance,
            "all_imbalance_factors": [
                float(f) for f in self.all_imbalance_factors
            ],
        }


def _one_pair(seed: int, n_osts: int):
    """Two probes three minutes apart on one live machine."""
    machine = jaguar(n_osts=n_osts).build(n_ranks=n_osts, seed=seed)
    install_production_noise(machine, live=True)
    cfg = IorConfig(
        n_writers=n_osts, block_size=128 * MB, api="posix",
        n_osts_used=n_osts,
    )
    res1 = run_ior(machine, cfg, output_name="probe1")
    # "Test 2 took place only 3 minutes later than Test 1."
    wait = machine.env.process(_sleep(machine.env, 180.0))
    machine.env.run(until=wait)
    res2 = run_ior(machine, cfg, output_name="probe2")
    return (
        WriterTimeline.of(res1.per_writer),
        WriterTimeline.of(res2.per_writer),
    )


def _sleep(env, seconds: float):
    yield env.timeout(seconds)


def run(scale: "Scale | str" = Scale.SMALL, base_seed: int = 0) -> Fig3Result:
    preset = resolve_preset(_PRESETS, scale)
    pairs = run_samples(
        partial(_one_pair, n_osts=preset["n_osts"]),
        n_samples_override(preset["n_pairs"]),
        base_seed,
        label=f"fig3[{preset['n_osts']}osts]",
    )
    factors: List[float] = []
    for t1, t2 in pairs:
        factors.append(t1.imbalance_factor)
        factors.append(t2.imbalance_factor)
    # Display pair: the one with the biggest contrast between its two
    # probes (the paper picked a striking example on purpose).
    show = max(
        pairs,
        key=lambda p: abs(p[0].imbalance_factor - p[1].imbalance_factor),
    )
    return Fig3Result(
        test1=show[0], test2=show[1], all_imbalance_factors=factors
    )
