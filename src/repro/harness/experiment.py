"""Seeded sampling utilities shared by all experiments."""

from __future__ import annotations

import os
from contextlib import contextmanager
from enum import Enum
from typing import Callable, List, TypeVar

__all__ = [
    "Scale",
    "checkpoint_to",
    "metrics_to",
    "n_samples_override",
    "resolve_preset",
    "run_samples",
    "scale_from_env",
    "sample_seed",
    "trace_to",
]

T = TypeVar("T")


class Scale(str, Enum):
    """Experiment size preset."""

    SMOKE = "smoke"  # seconds; used by the test suite
    SMALL = "small"  # benchmark default: reduced machine, full shape
    LARGE = "large"  # full Jaguar machine, single sweep cell per figure
    PAPER = "paper"  # publication configuration (slow)
    EXA = "exa"  # beyond-Jaguar projection: ~5000 OSTs, 64k writers

    @classmethod
    def parse(cls, value: "str | Scale") -> "Scale":
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(
                f"unknown scale {value!r}; choose from "
                f"{[s.value for s in cls]}"
            ) from None


def scale_from_env(default: "str | Scale" = Scale.SMALL) -> Scale:
    """Scale selected by the REPRO_SCALE environment variable."""
    return Scale.parse(os.environ.get("REPRO_SCALE", default))


# LARGE validates that a full-machine cell *completes* — figures that
# have nothing machine-size-specific to prove at that scale simply run
# their PAPER configuration instead of each growing a near-duplicate
# preset.  EXA is only meaningful for figures that define it (today
# the application sweep); everything else falls back to LARGE.
_PRESET_FALLBACKS = {Scale.LARGE: Scale.PAPER, Scale.EXA: Scale.LARGE}


def resolve_preset(presets, scale: "str | Scale"):
    """Look up a figure's preset table with documented fallbacks.

    ``presets[scale]`` when the figure defines that scale directly;
    otherwise the fallback chain in :data:`_PRESET_FALLBACKS`
    (``EXA -> LARGE -> PAPER``), followed transitively so a figure
    with only a PAPER preset still resolves at EXA.  Raises
    ``KeyError`` only for a scale the figure neither defines nor
    inherits.
    """
    scale = Scale.parse(scale)
    probe = scale
    while probe is not None:
        if probe in presets:
            return presets[probe]
        probe = _PRESET_FALLBACKS.get(probe)
    raise KeyError(
        f"no {scale.value!r} preset (and no fallback) for this figure"
    )


def sample_seed(base_seed: int, sample: int) -> int:
    """Derived per-sample seed (stable, collision-free spacing)."""
    return base_seed * 1_000_003 + sample


def n_samples_override(default: int) -> int:
    """Sample count for a sweep cell: ``REPRO_SAMPLES`` or *default*.

    Lets a caller raise (or lower) every preset's per-cell sample
    count without touching the scale — e.g. regenerate smoke-scale
    artifacts with real error bars via ``REPRO_SAMPLES=3``.
    """
    env = os.environ.get("REPRO_SAMPLES", "").strip()
    if not env:
        return default
    n = int(env)
    if n < 1:
        raise ValueError(f"REPRO_SAMPLES must be >= 1, got {n}")
    return n


def run_samples(
    fn: Callable[[int], T],
    n_samples: int,
    base_seed: int = 0,
    jobs: "int | None" = None,
    label: "str | None" = None,
) -> List[T]:
    """Run ``fn(seed)`` for each of *n_samples* derived seeds.

    Every sample builds its own machine from its seed, so samples are
    statistically independent, individually reproducible — and safe to
    fan out over worker processes: with ``jobs`` (or ``REPRO_JOBS``)
    above 1 this delegates to :mod:`repro.harness.parallel` and the
    :mod:`repro.service` scheduler, whose results are bit-for-bit
    identical to serial execution (including across worker deaths,
    retries, and journal resume — see DESIGN.md §14).  *fn* must then
    be picklable (module-level function or ``functools.partial``);
    anything else falls back to serial with a ``RuntimeWarning``.
    *label* names the sweep cell in journals and failure messages.
    """
    from repro.harness.parallel import run_samples as _parallel_run_samples

    return _parallel_run_samples(
        fn, n_samples, base_seed, jobs=jobs, label=label
    )


@contextmanager
def trace_to(path: str, tracer=None):
    """Trace every machine built inside the block; export on exit.

    Installs a :class:`~repro.trace.Tracer` as the process-wide active
    tracer (every :meth:`MachineSpec.build` picks it up) and writes the
    Chrome trace-event JSON to *path* when the block finishes — even on
    error, so a crashed experiment still leaves an inspectable trace.

    >>> with trace_to("trace.json"):         # doctest: +SKIP
    ...     fig6.run("smoke")
    """
    from repro.trace import Tracer, chrome, tracing

    t = tracer if tracer is not None else Tracer()
    try:
        with tracing(t):
            yield t
    finally:
        chrome.export(t.events, path)


@contextmanager
def checkpoint_to(state_dir: str):
    """Checkpoint every sweep cell run inside the block to *state_dir*.

    Installs the directory as the process-wide journal state dir
    (every :func:`run_samples` batch below appends completed jobs to
    ``state_dir/journal.jsonl``, fsync'd per record).  Re-entering the
    same block after a crash resumes from the journal: completed cells
    are restored bit-identically, only the rest recompute.  Equivalent
    to ``REPRO_JOURNAL=state_dir`` / ``--journal`` on the CLIs.

    >>> with checkpoint_to("sweep_state"):   # doctest: +SKIP
    ...     fig1.run("paper")
    """
    from repro.service.journal import (
        get_active_state_dir,
        set_active_state_dir,
    )

    prev = get_active_state_dir()
    set_active_state_dir(state_dir)
    try:
        yield state_dir
    finally:
        set_active_state_dir(prev)


@contextmanager
def metrics_to(path: str, registry=None):
    """Collect telemetry from every machine built inside the block.

    The registry twin of :func:`trace_to`: installs a
    :class:`~repro.telemetry.MetricsRegistry` as the process-wide
    active registry (every :meth:`MachineSpec.build` attaches it, and
    :mod:`repro.harness.parallel` ships worker snapshots back into it)
    and writes the JSON snapshot to *path* when the block finishes —
    even on error.  Collection is non-perturbing: results are
    bit-identical with or without it.

    >>> with metrics_to("metrics.json"):     # doctest: +SKIP
    ...     fig6.run("smoke")
    """
    from repro.telemetry import MetricsRegistry, collecting

    reg = registry if registry is not None else MetricsRegistry()
    try:
        with collecting(reg):
            yield reg
    finally:
        with open(path, "w") as fh:
            fh.write(reg.to_json())
