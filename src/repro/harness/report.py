"""Plain-text table and series rendering for benchmark output."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "render_series"]


def _fmt(value, width: int) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e6:
            s = f"{value:.2f}"
        else:
            s = f"{value:.3g}"
    else:
        s = str(value)
    return s.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Fixed-width table with a rule under the header."""
    cols = len(headers)
    for r in rows:
        if len(r) != cols:
            raise ValueError(
                f"row {r!r} has {len(r)} cells, expected {cols}"
            )
    widths = [len(h) for h in headers]
    rendered: List[List[str]] = []
    for r in rows:
        cells = []
        for i, v in enumerate(r):
            s = _fmt(v, 0).strip()
            widths[i] = max(widths[i], len(s))
            cells.append(s)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append(
            "  ".join(c.rjust(w) for c, w in zip(cells, widths))
        )
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: dict,
) -> str:
    """A figure as a table: one x column plus one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)
