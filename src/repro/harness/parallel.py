"""Process-parallel sample execution for experiment sweeps.

Every figure in the paper is a sweep (writer counts x transports x
interference conditions x samples), and every sample is an independent
simulation fully determined by its derived seed — embarrassingly
parallel work.  This module decomposes a sweep into jobs and hands
them to the :mod:`repro.service` scheduler (supervised worker shards,
per-job timeouts, capped retries, dead-worker adoption, checkpointed
journal), while keeping results **bit-for-bit identical** to serial
execution:

* the per-sample seed derivation is exactly
  :func:`repro.harness.experiment.sample_seed` — the same integers in
  the same order;
* results are returned in submission order regardless of completion
  order, retries, or worker deaths;
* each sample builds its own machine from its seed (that was already
  the contract), so no state crosses process boundaries;
* a resumed sweep restores completed jobs from the journal (the
  pickled originals) and recomputes only the rest from their
  pre-derived seeds, so crash/resume preserves the same contract.

Job count resolution, in priority order: the explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable (``0`` means "all
cores"), else serial.  ``--jobs N`` on ``repro.tools.experiment`` and
on the benchmark suite sets ``REPRO_JOBS`` for everything below it.

Checkpointing engages when a journal state directory is active:
either ``REPRO_JOURNAL=DIR`` in the environment (set by ``--journal``
on the experiment CLI and benchmark suite, and by ``repro.tools.serve``)
or an explicit :func:`repro.harness.experiment.checkpoint_to` block.
With a journal active even serial execution routes through the
scheduler so every completed cell survives a crash.  ``REPRO_JOB_TIMEOUT``
(seconds) and ``REPRO_JOB_RETRIES`` tune the per-job wall-clock budget
and the retry cap for crashed/hung workers.

Tracing and telemetry work as before: when a process-wide tracer or
metrics registry is active, each job runs under fresh instrumentation
and the parent absorbs the buffers in submission order
(:meth:`repro.trace.Tracer.absorb` /
:meth:`repro.telemetry.MetricsRegistry.absorb`).  Instrumentation
buffers are journaled alongside results, so a resumed traced sweep is
traced like an uninterrupted one.

Functions submitted to the pool must be picklable (module-level
functions or :func:`functools.partial` over them — not closures).  A
non-picklable function falls back to plain serial execution (no pool,
no journal) with a ``RuntimeWarning`` so a sweep never breaks, it just
stops being parallel and resumable.

A job that raises in its worker fails the sweep with a
:class:`~repro.errors.JobFailure` naming the cell label and
``sample_seed`` plus a ready-to-paste reproduction one-liner — a
worker failure is never an anonymous ``BrokenProcessPool``.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_jobs", "run_samples"]

T = TypeVar("T")
U = TypeVar("U")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count to use: explicit *jobs*, else ``REPRO_JOBS``, else 1.

    ``0`` (or any negative value) means "one worker per CPU core".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    jobs: Optional[int] = None,
    label: Optional[str] = None,
) -> List[U]:
    """``[fn(x) for x in items]``, scheduled over worker shards.

    Order-stable: result *i* corresponds to ``items[i]`` no matter
    which worker finished first (or died and had its job adopted).
    With ``jobs == 1`` (the default when ``REPRO_JOBS`` is unset) and
    no active journal, no scheduler is created and this *is* the list
    comprehension.  A non-picklable *fn* (closure, lambda, bound
    local) triggers a plain serial fallback with a ``RuntimeWarning``.

    *label* names the sweep cell in journals, progress output, and
    failure messages (falling back to the function's qualified name).
    """
    from repro.service.journal import get_active_state_dir

    n_jobs = resolve_jobs(jobs)
    items = list(items)
    state_dir = get_active_state_dir()
    if state_dir is None and (n_jobs <= 1 or len(items) <= 1):
        return [fn(x) for x in items]

    try:
        pickle.dumps(fn)
    except Exception as exc:
        warnings.warn(
            f"parallel_map: {fn!r} is not picklable ({exc}); "
            "running serially.  Pass a module-level function or a "
            "functools.partial over one to enable process parallelism "
            "and journal checkpointing.",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(x) for x in items]

    from repro.service.job import describe_fn, make_job
    from repro.service.journal import journal_in
    from repro.service.scheduler import Scheduler, get_progress_hook

    base_label = label if label is not None else describe_fn(fn)[0]
    specs = [
        make_job(fn, x, label=base_label, index=i)
        for i, x in enumerate(items)
    ]
    policy = None
    retries = _env_int("REPRO_JOB_RETRIES")
    if retries is not None:
        from repro.faults import RetryPolicy

        policy = RetryPolicy(max_retries=retries)
    scheduler = Scheduler(
        n_workers=n_jobs,
        policy=policy,
        job_timeout=_env_float("REPRO_JOB_TIMEOUT"),
        journal=journal_in(state_dir) if state_dir else None,
        progress=get_progress_hook(),
    )
    return scheduler.run(specs, label=base_label)


def run_samples(
    fn: Callable[[int], T],
    n_samples: int,
    base_seed: int = 0,
    jobs: Optional[int] = None,
    label: Optional[str] = None,
) -> List[T]:
    """Run ``fn(seed)`` for each of *n_samples* derived seeds.

    The scheduled twin of the serial harness entry point: seeds come
    from :func:`repro.harness.experiment.sample_seed` (identical
    integers in identical order) and the output list is ordered by
    sample index, so serial, parallel, and crash-resumed execution are
    indistinguishable from the results.
    """
    from repro.harness.experiment import sample_seed

    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    seeds = [sample_seed(base_seed, i) for i in range(n_samples)]
    return parallel_map(fn, seeds, jobs=jobs, label=label)
