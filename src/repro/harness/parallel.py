"""Process-parallel sample execution for experiment sweeps.

Every figure in the paper is a sweep (writer counts x transports x
interference conditions x samples), and every sample is an independent
simulation fully determined by its derived seed — embarrassingly
parallel work that the serial harness used to grind through one run at
a time.  This module fans samples out over a ``ProcessPoolExecutor``
while keeping the results **bit-for-bit identical** to serial
execution:

* the per-sample seed derivation is exactly
  :func:`repro.harness.experiment.sample_seed` — the same integers in
  the same order;
* results are returned in submission order regardless of completion
  order;
* each sample builds its own machine from its seed (that was already
  the contract), so no state crosses process boundaries.

Job count resolution, in priority order: the explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable (``0`` means "all
cores"), else serial.  ``--jobs N`` on ``repro.tools.experiment`` and
on the benchmark suite sets ``REPRO_JOBS`` for everything below it.

Tracing still works: when a process-wide tracer is active (see
:func:`repro.harness.experiment.trace_to`), each worker runs its
sample under a fresh tracer and ships the recorded events back; the
parent absorbs them in sample order with
:meth:`repro.trace.Tracer.absorb`, which assigns each worker run a
fresh run index — the same multi-run prefixing the Chrome exporter
already uses for serial sweeps.

Telemetry mirrors tracing: when a process-wide metrics registry is
active (see :func:`repro.harness.experiment.metrics_to`), each worker
collects into a fresh registry and ships a snapshot back; the parent
absorbs snapshots in sample order with
:meth:`repro.telemetry.MetricsRegistry.absorb`, re-basing worker run
indices so per-run series stay distinguishable.

Functions submitted to the pool must be picklable (module-level
functions or :func:`functools.partial` over them — not closures).  A
non-picklable function falls back to serial execution with a
``RuntimeWarning`` so a sweep never breaks, it just stops being
parallel.
"""

from __future__ import annotations

import os
import pickle
import warnings
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_jobs", "run_samples"]

T = TypeVar("T")
U = TypeVar("U")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count to use: explicit *jobs*, else ``REPRO_JOBS``, else 1.

    ``0`` (or any negative value) means "one worker per CPU core".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _invoke(fn: Callable[[T], U], arg: T, want_trace: bool,
            want_metrics: bool = False):
    """Worker-side wrapper: run one sample, optionally instrumented.

    Returns ``(result, events, metrics)`` where *events* is the worker
    tracer's buffer and *metrics* a worker registry snapshot (either is
    None when that instrumentation is off).  Runs in the pool worker; a
    fork-started worker may have inherited the parent's active tracer
    or registry, whose recordings would land in a lost copy — so both
    are always overridden here, one way or the other.
    """
    from repro.telemetry import MetricsRegistry, collecting
    from repro.telemetry.registry import set_active_registry
    from repro.trace import Tracer, tracing
    from repro.trace.tracer import set_active_tracer

    if want_metrics:
        reg = MetricsRegistry()
        ctx = collecting(reg)
    else:
        reg = None
        set_active_registry(None)
        ctx = None
    if want_trace:
        t = Tracer()
        with tracing(t):
            if ctx is not None:
                with ctx:
                    result = fn(arg)
            else:
                result = fn(arg)
        return result, t.events, reg.snapshot() if reg else None
    set_active_tracer(None)
    if ctx is not None:
        with ctx:
            result = fn(arg)
    else:
        result = fn(arg)
    return result, None, reg.snapshot() if reg else None


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    jobs: Optional[int] = None,
) -> List[U]:
    """``[fn(x) for x in items]``, fanned out over worker processes.

    Order-stable: result *i* corresponds to ``items[i]`` no matter
    which worker finished first.  With ``jobs == 1`` (the default when
    ``REPRO_JOBS`` is unset) no pool is created and this *is* the list
    comprehension.  A non-picklable *fn* (closure, lambda, bound local)
    triggers a serial fallback with a ``RuntimeWarning``.
    """
    from repro.telemetry.registry import get_active_registry
    from repro.trace.tracer import get_active_tracer

    n_jobs = resolve_jobs(jobs)
    items = list(items)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(x) for x in items]

    try:
        pickle.dumps(fn)
    except Exception as exc:
        warnings.warn(
            f"parallel_map: {fn!r} is not picklable ({exc}); "
            "running serially.  Pass a module-level function or a "
            "functools.partial over one to enable process parallelism.",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(x) for x in items]

    from concurrent.futures import ProcessPoolExecutor

    tracer = get_active_tracer()
    want_trace = tracer is not None and tracer.enabled
    registry = get_active_registry()
    want_metrics = registry is not None and registry.enabled
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(items))) as pool:
        futures = [
            pool.submit(_invoke, fn, x, want_trace, want_metrics)
            for x in items
        ]
        out: List[U] = []
        for fut in futures:  # submission order == item order
            result, events, metrics = fut.result()
            if want_trace and events:
                tracer.absorb(events)
            if want_metrics and metrics is not None:
                registry.absorb(metrics)
            out.append(result)
    return out


def run_samples(
    fn: Callable[[int], T],
    n_samples: int,
    base_seed: int = 0,
    jobs: Optional[int] = None,
) -> List[T]:
    """Run ``fn(seed)`` for each of *n_samples* derived seeds.

    The parallel twin of the serial harness entry point: seeds come
    from :func:`repro.harness.experiment.sample_seed` (identical
    integers in identical order) and the output list is ordered by
    sample index, so serial and parallel execution are
    indistinguishable from the results.
    """
    from repro.harness.experiment import sample_seed

    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    seeds = [sample_seed(base_seed, i) for i in range(n_samples)]
    return parallel_map(fn, seeds, jobs=jobs)
