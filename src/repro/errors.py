"""Exception hierarchy for :mod:`repro`."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "FileSystemError",
    "FileNotFoundInNamespace",
    "FileExistsInNamespace",
    "StripeLimitExceeded",
    "ProtocolError",
    "TransportError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or machine configuration is invalid."""


class FileSystemError(ReproError):
    """Base class for simulated-file-system errors."""


class FileNotFoundInNamespace(FileSystemError, KeyError):
    """Open of a path that does not exist."""


class FileExistsInNamespace(FileSystemError):
    """Exclusive create of a path that already exists."""


class StripeLimitExceeded(FileSystemError, ValueError):
    """Requested stripe count exceeds the file system's per-file limit.

    Models the Lustre 1.6 cap of 160 storage targets per file that the
    paper identifies as the structural bottleneck of single-file output.
    """


class ProtocolError(ReproError):
    """An adaptive-IO protocol invariant was violated."""


class TransportError(ReproError):
    """A transport failed to complete an output operation."""
