"""Exception hierarchy for :mod:`repro`."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AdmissionError",
    "ConfigurationError",
    "FaultPlanError",
    "FileSystemError",
    "FileNotFoundInNamespace",
    "FileExistsInNamespace",
    "StripeLimitExceeded",
    "OstFailedError",
    "WriteTimeout",
    "IntegrityError",
    "JobFailure",
    "ProtocolError",
    "TransportError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or machine configuration is invalid."""


class FileSystemError(ReproError):
    """Base class for simulated-file-system errors."""


class FileNotFoundInNamespace(FileSystemError, KeyError):
    """Open of a path that does not exist."""


class FileExistsInNamespace(FileSystemError):
    """Exclusive create of a path that already exists."""


class StripeLimitExceeded(FileSystemError, ValueError):
    """Requested stripe count exceeds the file system's per-file limit.

    Models the Lustre 1.6 cap of 160 storage targets per file that the
    paper identifies as the structural bottleneck of single-file output.
    """


class OstFailedError(FileSystemError):
    """An operation touched a fail-stopped storage target.

    Raised synchronously when a write targets an OST already marked
    FAILED, and delivered asynchronously (the flow's completion event
    fails) to writes in flight when the target dies under them.
    """

    def __init__(self, ost: int, message: str = ""):
        super().__init__(message or f"ost {ost} failed")
        self.ost = ost


class WriteTimeout(FileSystemError):
    """A write or flush did not complete within its deadline.

    The usual symptom of a *hung* storage target: the request was
    accepted (flows started, maybe some bytes absorbed) but completion
    never came.  ``undelivered`` counts the bytes still in flight when
    the deadline expired.
    """

    def __init__(self, message: str, undelivered: float = 0.0):
        super().__init__(message)
        self.undelivered = undelivered


class IntegrityError(FileSystemError):
    """A read-back found data that does not match its index checksum.

    Raised by the verifying read mode of
    :class:`~repro.core.bp.BpReader` when a block's stored state is
    torn, missing, or fails its per-block checksum.  ``status`` carries
    the scrub classification (``corrupt``/``torn``/``missing``).
    """

    def __init__(self, message: str, status: str = "corrupt"):
        super().__init__(message)
        self.status = status


class FaultPlanError(ConfigurationError):
    """A fault plan is malformed or references unknown targets."""


class AdmissionError(ConfigurationError):
    """A tenant contract set oversubscribes the guaranteed capacity.

    Raised at QoS-plane installation time, never mid-run: admission
    control is the only place a tenant is refused outright.  Once
    admitted, a tenant over its contract is backpressured (throttled
    toward its floor), never errored — the graceful-degradation
    contract.
    """


class ProtocolError(ReproError):
    """An adaptive-IO protocol invariant was violated."""


class JobFailure(ReproError):
    """A scheduled sweep job failed (error, crash loop, or timeout).

    Raised by the :mod:`repro.service` scheduler when a job either
    raised in its worker or exhausted its retry budget after repeated
    worker deaths / wall-clock timeouts.  Carries the identity that
    makes the failure reproducible with a one-liner: the cell
    ``label``, the derived ``sample_seed`` (``None`` for non-sweep
    jobs), and — when the failing function was a module-level callable
    or a partial over one — a ready-to-paste ``repro_command``.
    """

    def __init__(
        self,
        message: str,
        label: str = "",
        sample_seed: "int | None" = None,
        job_id: str = "",
        repro_command: str = "",
        error_text: str = "",
    ):
        super().__init__(message)
        self.label = label
        self.sample_seed = sample_seed
        self.job_id = job_id
        self.repro_command = repro_command
        self.error_text = error_text


class TransportError(ReproError):
    """A transport failed to complete an output operation.

    Fault-aware transports attach a partial-output accounting: how many
    bytes made it durably to live storage (``bytes_durable``), how many
    are known lost (``bytes_lost``), how many landed but no longer
    match what the writer produced (``bytes_corrupt`` — torn or
    silently corrupted blocks the static methods cannot repair), and —
    when the run got far enough to assemble one — the partial
    :class:`OutputResult` (``partial``, unvalidated: its invariants may
    legitimately not hold).
    """

    def __init__(
        self,
        message: str,
        bytes_durable: float = 0.0,
        bytes_lost: float = 0.0,
        partial: object = None,
        bytes_corrupt: float = 0.0,
    ):
        super().__init__(message)
        self.bytes_durable = float(bytes_durable)
        self.bytes_lost = float(bytes_lost)
        self.bytes_corrupt = float(bytes_corrupt)
        self.partial = partial
